package ingest

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"negativaml/internal/cudasim"
	"negativaml/internal/dataset"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/models"
	"negativaml/internal/negativa"
)

// workloadFor builds a small representative workload against the install:
// the Llama2 LLM graph for vLLM (its family routing is LLM-specific),
// MobileNetV2 inference everywhere else.
func workloadFor(t *testing.T, in *mlframework.Install, lazy bool) mlruntime.Workload {
	t.Helper()
	mode := cudasim.EagerLoading
	if lazy {
		mode = cudasim.LazyLoading
	}
	w := mlruntime.Workload{
		Name:           in.Framework + "/roundtrip",
		Install:        in,
		Devices:        []gpuarch.Device{gpuarch.T4},
		Mode:           mode,
		Data:           dataset.CIFAR10,
		PerItemCompute: 200 * time.Microsecond,
	}
	if in.Framework == mlframework.VLLM {
		w.Graph = models.LLM(models.Llama2(true, 1))
		w.Data = dataset.ManualInput
	} else {
		w.Graph = models.MobileNetV2(false, 1)
	}
	return w
}

// TestRoundTripDebloatIdentity is the ingestion identity property: for every
// framework, with and without GPU kernel pre-loading, an install written to
// disk and ingested back debloats to byte-identical per-library reports and
// sparse images as the in-memory install it came from. This is what lets
// profiles, stage memos, and peer caches serve ingested trees and generated
// installs interchangeably.
func TestRoundTripDebloatIdentity(t *testing.T) {
	frameworks := []string{
		mlframework.PyTorch, mlframework.TensorFlow,
		mlframework.VLLM, mlframework.HFTransformers,
	}
	if testing.Short() {
		frameworks = frameworks[:1]
	}
	for _, fw := range frameworks {
		for _, lazy := range []bool{false, true} {
			name := fw + "/eager"
			if lazy {
				name = fw + "/lazy"
			}
			t.Run(name, func(t *testing.T) {
				mem, err := mlframework.Generate(mlframework.Config{Framework: fw, TailLibs: 3})
				if err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				if err := mem.WriteTo(dir); err != nil {
					t.Fatal(err)
				}
				res, err := Tree(dir, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Unresolved) != 0 {
					t.Fatalf("written install has unresolved deps: %v", res.Unresolved)
				}
				ingested, err := res.Install()
				if err != nil {
					t.Fatal(err)
				}

				// Identity starts at the fingerprint: same bytes, same key,
				// so every stage memo and profile carries over.
				if negativa.InstallFingerprint(mem) != negativa.InstallFingerprint(ingested) {
					t.Fatal("ingested install fingerprints differently than its in-memory source")
				}

				opt := negativa.Options{MaxSteps: 2, SkipVerify: true, Workers: 2}
				want, err := negativa.Debloat(workloadFor(t, mem, lazy), opt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := negativa.Debloat(workloadFor(t, ingested, lazy), opt)
				if err != nil {
					t.Fatal(err)
				}

				if len(got.Libs) != len(want.Libs) {
					t.Fatalf("report count %d, want %d", len(got.Libs), len(want.Libs))
				}
				for i, wr := range want.Libs {
					gr := got.Libs[i]
					// Reports must match field for field; Sparse is compared
					// through its zeroed ranges and materialized bytes (the
					// image struct itself holds unexported library pointers).
					wj, gj := *wr, *gr
					wj.Sparse, gj.Sparse = nil, nil
					wb, _ := json.Marshal(wj)
					gb, _ := json.Marshal(gj)
					if !bytes.Equal(wb, gb) {
						t.Errorf("%s: report differs:\n in-memory: %s\n ingested:  %s", wr.Name, wb, gb)
					}
					if !reflect.DeepEqual(wr.Sparse.ZeroedRanges(), gr.Sparse.ZeroedRanges()) {
						t.Errorf("%s: sparse range sets differ", wr.Name)
					}
					if !bytes.Equal(wr.Debloated(), gr.Debloated()) {
						t.Errorf("%s: debloated images differ", wr.Name)
					}
				}
			})
		}
	}
}
