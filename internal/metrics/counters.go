package metrics

import (
	"sort"
	"sync"
	"time"
)

// CounterSet is a named set of counters safe for concurrent use. Most
// series are monotonic (hits, misses, evictions, job counts); a series may
// instead be documented as a gauge whose deltas go both ways (cache.bytes,
// the result cache's retained-byte level). The batch-debloat service
// (internal/dserve) publishes through one shared set, which the HTTP
// metrics endpoint snapshots.
type CounterSet struct {
	mu sync.RWMutex
	v  map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet { return &CounterSet{v: map[string]int64{}} }

// Add increments the named counter by delta.
func (c *CounterSet) Add(name string, delta int64) {
	c.mu.Lock()
	c.v[name] += delta
	c.mu.Unlock()
}

// Get returns the counter's current value (0 when never touched).
func (c *CounterSet) Get(name string) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.v[name]
}

// Snapshot copies every counter.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.v))
	for k, v := range c.v {
		out[k] = v
	}
	return out
}

// Names returns the counter names in sorted order.
func (c *CounterSet) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.v))
	for k := range c.v {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// TimingSet records named duration samples (stored in milliseconds) for
// Distribution summaries — per-job wall times, per-stage latencies. Each
// series is a bounded ring holding the most recent maxTimingSamples
// observations, so a long-running service neither leaks nor slows its
// metrics endpoint.
type TimingSet struct {
	mu sync.Mutex
	v  map[string]*timingRing
}

// maxTimingSamples bounds each series; summaries reflect the most recent
// window. Sample order is irrelevant to Summarize, so a ring suffices.
const maxTimingSamples = 1024

type timingRing struct {
	samples []float64
	next    int   // overwrite position once the ring is full
	total   int64 // observations ever, beyond the ring window
}

func (r *timingRing) add(v float64) {
	r.total++
	if len(r.samples) < maxTimingSamples {
		r.samples = append(r.samples, v)
		return
	}
	r.samples[r.next] = v
	r.next = (r.next + 1) % maxTimingSamples
}

// NewTimingSet returns an empty timing set.
func NewTimingSet() *TimingSet { return &TimingSet{v: map[string]*timingRing{}} }

// Observe appends one duration sample to the named series.
func (t *TimingSet) Observe(name string, d time.Duration) {
	t.mu.Lock()
	r := t.v[name]
	if r == nil {
		r = &timingRing{}
		t.v[name] = r
	}
	r.add(float64(d) / float64(time.Millisecond))
	t.mu.Unlock()
}

// Total returns how many samples the named series has ever observed
// (0 for an unknown series) — unlike Summary it is O(1), so callers that
// derive values from Summary can use it to notice staleness cheaply.
func (t *TimingSet) Total(name string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.v[name]; r != nil {
		return r.total
	}
	return 0
}

// Summary summarizes the named series in milliseconds (zero Distribution
// when the series is empty).
func (t *TimingSet) Summary(name string) Distribution {
	t.mu.Lock()
	var s []float64
	if r := t.v[name]; r != nil {
		s = append(s, r.samples...)
	}
	t.mu.Unlock()
	return Summarize(s)
}

// Snapshot summarizes every series.
func (t *TimingSet) Snapshot() map[string]Distribution {
	t.mu.Lock()
	names := make([]string, 0, len(t.v))
	for k := range t.v {
		names = append(names, k)
	}
	t.mu.Unlock()
	out := make(map[string]Distribution, len(names))
	for _, n := range names {
		out[n] = t.Summary(n)
	}
	return out
}
