package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("hits", 1)
				c.Add("misses", 2)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hits"); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
	snap := c.Snapshot()
	if snap["misses"] != 16000 {
		t.Errorf("misses = %d, want 16000", snap["misses"])
	}
	if got := c.Get("never"); got != 0 {
		t.Errorf("untouched counter = %d, want 0", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "hits" || names[1] != "misses" {
		t.Errorf("names = %v", names)
	}
}

func TestTimingSetSummary(t *testing.T) {
	ts := NewTimingSet()
	for i := 1; i <= 4; i++ {
		ts.Observe("job", time.Duration(i)*10*time.Millisecond)
	}
	d := ts.Summary("job")
	if d.N != 4 {
		t.Fatalf("n = %d, want 4", d.N)
	}
	if d.Min != 10 || d.Max != 40 || d.Mean != 25 {
		t.Errorf("min/max/mean = %v/%v/%v, want 10/40/25 ms", d.Min, d.Max, d.Mean)
	}
	if got := ts.Summary("absent"); got.N != 0 {
		t.Errorf("absent series n = %d, want 0", got.N)
	}
	snap := ts.Snapshot()
	if len(snap) != 1 || snap["job"].N != 4 {
		t.Errorf("snapshot = %v", snap)
	}
}
