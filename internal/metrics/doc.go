// Package metrics provides the analysis primitives behind the paper's
// figures and tables: Jaccard similarity (Table 4/9), Pareto accumulation
// (Figure 6), and distribution summaries for the violin plots (Figure 5).
package metrics
