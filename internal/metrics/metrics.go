package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Jaccard computes |A ∩ B| / |A ∪ B| for two string sets given as slices
// (duplicates are ignored). Two empty sets have similarity 0.
func Jaccard(a, b []string) float64 {
	as := make(map[string]bool, len(a))
	for _, s := range a {
		as[s] = true
	}
	bs := make(map[string]bool, len(b))
	for _, s := range b {
		bs[s] = true
	}
	inter := 0
	for s := range as {
		if bs[s] {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Distribution summarizes a sample for violin-style reporting.
type Distribution struct {
	N                            int
	Min, Max                     float64
	Mean                         float64
	P10, P25, P50, P75, P90, P99 float64
}

// Summarize computes a Distribution. An empty sample yields the zero value.
func Summarize(sample []float64) Distribution {
	if len(sample) == 0 {
		return Distribution{}
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Distribution{
		N:    len(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		Mean: sum / float64(len(s)),
		P10:  quantile(s, 0.10),
		P25:  quantile(s, 0.25),
		P50:  quantile(s, 0.50),
		P75:  quantile(s, 0.75),
		P90:  quantile(s, 0.90),
		P99:  quantile(s, 0.99),
	}
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders a compact one-line summary.
func (d Distribution) String() string {
	return fmt.Sprintf("n=%d min=%.1f p25=%.1f median=%.1f p75=%.1f max=%.1f mean=%.1f",
		d.N, d.Min, d.P25, d.P50, d.P75, d.Max, d.Mean)
}

// ParetoPoint is one bar of a Pareto chart.
type ParetoPoint struct {
	Label  string
	Value  float64
	CumPct float64
}

// Pareto sorts (label, value) pairs descending and computes cumulative
// percentages of the total.
func Pareto(labels []string, values []float64) []ParetoPoint {
	n := len(labels)
	if len(values) < n {
		n = len(values)
	}
	pts := make([]ParetoPoint, n)
	var total float64
	for i := 0; i < n; i++ {
		pts[i] = ParetoPoint{Label: labels[i], Value: values[i]}
		total += values[i]
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Value > pts[j].Value })
	var cum float64
	for i := range pts {
		cum += pts[i].Value
		if total > 0 {
			pts[i].CumPct = 100 * cum / total
		}
	}
	return pts
}

// TopShare returns the fraction of the total contributed by the top k
// points of a Pareto series (e.g. "the top 10% of libraries account for 90%
// of the reduction").
func TopShare(pts []ParetoPoint, k int) float64 {
	if len(pts) == 0 || k <= 0 {
		return 0
	}
	if k > len(pts) {
		k = len(pts)
	}
	return pts[k-1].CumPct / 100
}

// AsciiBar renders a proportional bar for terminal tables.
func AsciiBar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}
