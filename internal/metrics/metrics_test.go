package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{[]string{"x", "y"}, []string{"x", "y"}, 1},
		{[]string{"x"}, []string{"y"}, 0},
		{[]string{"x", "y", "z"}, []string{"y", "z", "w"}, 0.5},
		{nil, nil, 0},
		{[]string{"x"}, nil, 0},
		{[]string{"x", "x", "y"}, []string{"x", "y"}, 1}, // duplicates ignored
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	// Symmetry and range.
	f := func(a, b []string) bool {
		x := Jaccard(a, b)
		y := Jaccard(b, a)
		return x == y && x >= 0 && x <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Self-similarity is 1 for non-empty sets.
	g := func(a []string) bool {
		if len(a) == 0 {
			return Jaccard(a, a) == 0
		}
		return Jaccard(a, a) == 1
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	d := Summarize([]float64{1, 2, 3, 4, 5})
	if d.N != 5 || d.Min != 1 || d.Max != 5 || d.Mean != 3 || d.P50 != 3 {
		t.Errorf("Summarize = %+v", d)
	}
	if d.P25 != 2 || d.P75 != 4 {
		t.Errorf("quartiles = %v, %v", d.P25, d.P75)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty sample should be zero value")
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.Min != 7 || one.Max != 7 {
		t.Errorf("single sample = %+v", one)
	}
	if d.String() == "" {
		t.Error("String should render")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestPareto(t *testing.T) {
	pts := Pareto([]string{"a", "b", "c", "d"}, []float64{10, 40, 30, 20})
	if pts[0].Label != "b" || pts[1].Label != "c" || pts[3].Label != "a" {
		t.Errorf("order = %v", pts)
	}
	if math.Abs(pts[0].CumPct-40) > 1e-9 || math.Abs(pts[3].CumPct-100) > 1e-9 {
		t.Errorf("cumulative = %v", pts)
	}
	if got := TopShare(pts, 2); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("TopShare(2) = %v, want 0.7", got)
	}
	if TopShare(pts, 0) != 0 || TopShare(nil, 3) != 0 {
		t.Error("degenerate TopShare")
	}
	if got := TopShare(pts, 99); math.Abs(got-1) > 1e-9 {
		t.Errorf("TopShare(all) = %v", got)
	}
}

func TestParetoMismatchedLengths(t *testing.T) {
	pts := Pareto([]string{"a", "b", "c"}, []float64{1, 2})
	if len(pts) != 2 {
		t.Errorf("len = %d, want 2", len(pts))
	}
}

func TestAsciiBar(t *testing.T) {
	if got := AsciiBar(0.5, 10); len([]rune(got)) != 10 {
		t.Errorf("bar width = %d", len([]rune(got)))
	}
	if AsciiBar(-1, 4) != "····" {
		t.Error("negative clamps to empty bar")
	}
	if AsciiBar(2, 4) != "████" {
		t.Error("overflow clamps to full bar")
	}
}
