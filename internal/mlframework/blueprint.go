package mlframework

import (
	"hash/fnv"

	"negativaml/internal/gpuarch"
)

// LibFunc names one CPU function inside one shared library.
type LibFunc struct {
	Lib  string
	Func string
}

// Blueprint describes one shared library to generate.
type Blueprint struct {
	// Name is the soname (e.g. "libtorch_cuda.so").
	Name string
	// Seed namespaces the deterministic content. Blueprints shared between
	// installs (the torch/CUDA vendor stack) set a stack-level seed so the
	// same library is byte-identical wherever it appears; when empty the
	// framework name is used.
	Seed string
	// Main marks the framework's core library; it receives wrapper dispatch
	// functions for every kernel family in the install.
	Main bool
	// Funcs is the total CPU function count.
	Funcs int
	// InitFrac is the fraction of functions the framework calls at init.
	InitFrac float64
	// AvgFuncSize is the mean code size of bloat functions in bytes.
	AvgFuncSize int
	// UsedFuncSizeFactor scales init/dispatch functions relative to bloat
	// functions (used code tends to be the big, central routines).
	UsedFuncSizeFactor float64
	// Families are the kernel families whose device code lives here.
	Families []string
	// BloatFamilies are kernel families nothing in the install ever uses
	// (whole unused features: FFT, sparse, RNG, ...).
	BloatFamilies []string
	// SetupFuncsPerFamily is the count of host dispatch functions per
	// hosted family.
	SetupFuncsPerFamily int
	// Archs are the SM architectures the fatbin ships elements for.
	Archs []gpuarch.SM
	// OldArchScale scales kernel code size for architectures below SM75
	// (legacy targets ship trimmed kernels).
	OldArchScale float64
	// ArchScales optionally overrides the per-architecture code-size scale;
	// unlisted architectures fall back to OldArchScale (below SM75) or 1.
	// Real fatbins concentrate bytes in the primary deployment target and
	// ship trimmed code for the rest, which is why the paper's retained
	// GPU-byte share (~25%) exceeds the matched-element share (~2%).
	ArchScales map[gpuarch.SM]float64
	// EngineBase is the device-side support code (device-only kernels)
	// embedded in every family engine cubin; it rides along when any kernel
	// of the family is used.
	EngineBase int
	// FineGrainedArchs lists architectures whose kernels are shipped as
	// per-variant cubins instead of one engine cubin per family.
	FineGrainedArchs []gpuarch.SM
	// UsedKernelSize is the mean code size of universe (reachable) kernels.
	UsedKernelSize int
	// BloatFamilyEngineScale scales engine size for BloatFamilies.
	BloatFamilyEngineScale float64
	// BloatCubinsPerArch is the number of pure-bloat cubins per architecture.
	BloatCubinsPerArch int
	// BloatKernelsPerCubin is the kernel count per bloat cubin.
	BloatKernelsPerCubin int
	// BloatKernelSize is the mean code size of bloat kernels.
	BloatKernelSize int
	// OtherBytes is .rodata filler (non-code file content).
	OtherBytes int
}

// HasGPU reports whether the blueprint ships device code.
func (b *Blueprint) HasGPU() bool {
	return len(b.Archs) > 0 && (len(b.Families) > 0 || len(b.BloatFamilies) > 0 || b.BloatCubinsPerArch > 0)
}

// det derives a deterministic 64-bit value from string parts; it replaces
// RNG state so identical blueprints always yield identical bytes.
func det(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// detRange maps a hash into [min, max].
func detRange(h uint64, min, max int) int {
	if max <= min {
		return min
	}
	return min + int(h%uint64(max-min+1))
}

// jitter returns size +/- 25% deterministically.
func jitter(size int, h uint64) int {
	if size <= 0 {
		return 0
	}
	span := size / 2
	if span == 0 {
		return size
	}
	return size - span/2 + int(h%uint64(span+1))
}
