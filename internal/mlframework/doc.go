// Package mlframework generates the synthetic ML framework installations
// the experiments debloat: PyTorch, TensorFlow, vLLM, and Hugging Face
// Transformers, each as a set of ELF shared libraries with planted CPU
// functions and GPU kernels.
//
// The generator is deterministic (content is derived from name hashes, not
// RNG state) and plants three kinds of inventory per library:
//
//   - CPU functions: init functions the framework calls at import time,
//     per-family dispatch functions called when an operator runs, and bloat
//     functions nothing calls.
//   - GPU kernels: for every architecture the library ships, an "engine"
//     cubin per kernel family holding all shape variants any supported
//     workload could use (plus device-only child kernels), and bloat cubins
//     holding kernels nothing launches. Libraries with Hopper/Ampere-tuned
//     code ship finer-grained per-variant cubins for those architectures,
//     reproducing the paper's lower element-count reductions on H100 and
//     8xA100 (Tables 6 and 10).
//   - Filler .rodata, standing in for the non-code content of real
//     libraries.
//
// Sizes follow DESIGN.md §4: 1 paper-MB = 1 simulated-KB, function counts
// scaled by 1/100, element counts by roughly 1/10.
package mlframework
