package mlframework

import (
	"fmt"
	"sort"
	"strings"

	"negativaml/internal/cubin"
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
	"negativaml/internal/models"
)

// Install is a generated framework installation: its shared libraries plus
// the runtime metadata the executor needs (what to call at init, which
// functions dispatch each operator family, where each family's kernels
// live). The debloater never reads this metadata — it profiles the running
// workload like the real tool.
type Install struct {
	Framework string
	Version   string
	// LibNames is the load order.
	LibNames []string
	Libs     map[string]*elfx.Library
	// InitCalls are the (library, function) pairs invoked at framework
	// import/initialization.
	InitCalls []LibFunc
	// FamilyCalls maps a kernel family to the host dispatch functions
	// executed every time an op of that family runs.
	FamilyCalls map[string][]LibFunc
	// FamilyLib maps a kernel family to the library holding its kernels.
	FamilyLib map[string]string
	// BaseHeapCPU is the framework's own host heap (scaled bytes).
	BaseHeapCPU int64
	// GPUPoolFraction, when non-zero, preallocates that fraction of device
	// memory at startup (TensorFlow's allocator, vLLM's KV-cache pool).
	GPUPoolFraction float64
}

// Library returns the named library or nil.
func (in *Install) Library(name string) *elfx.Library { return in.Libs[name] }

// TotalFileSize sums the file sizes of all libraries.
func (in *Install) TotalFileSize() int64 {
	var n int64
	for _, l := range in.Libs {
		n += l.FileSize()
	}
	return n
}

// CloneWithLibs returns a shallow copy of the install with some libraries
// replaced by the given raw bytes (the debloated versions).
func (in *Install) CloneWithLibs(replaced map[string][]byte) (*Install, error) {
	out := *in
	out.Libs = make(map[string]*elfx.Library, len(in.Libs))
	for name, lib := range in.Libs {
		if data, ok := replaced[name]; ok {
			nl, err := elfx.Parse(name, data)
			if err != nil {
				return nil, fmt.Errorf("mlframework: replace %s: %w", name, err)
			}
			out.Libs[name] = nl
		} else {
			out.Libs[name] = lib
		}
	}
	return &out, nil
}

// generate builds an install from blueprints.
//
// universeGraphs defines the kernel universe planted into hosted families —
// every kernel any supported workload of this framework stack could resolve,
// enumerated per architecture via models.UniverseKernels.
func generate(framework, version string, bps []Blueprint, universeGraphs []*models.Graph, maxRanks, tailLibs int, baseHeap int64, gpuPool float64) (*Install, error) {
	in := &Install{
		Framework:       framework,
		Version:         version,
		Libs:            make(map[string]*elfx.Library),
		FamilyCalls:     make(map[string][]LibFunc),
		FamilyLib:       make(map[string]string),
		BaseHeapCPU:     baseHeap,
		GPUPoolFraction: gpuPool,
	}

	// Kernel universes per architecture.
	archSet := make(map[gpuarch.SM]bool)
	for i := range bps {
		for _, a := range bps[i].Archs {
			archSet[a] = true
		}
	}
	universe := make(map[gpuarch.SM]map[string][]string)
	for a := range archSet {
		universe[a] = models.UniverseKernels(universeGraphs, a, maxRanks)
	}

	// All families in the install (for main-lib wrappers).
	var allFamilies []string
	famSeen := make(map[string]bool)
	for i := range bps {
		for _, f := range bps[i].Families {
			if !famSeen[f] {
				famSeen[f] = true
				allFamilies = append(allFamilies, f)
			}
		}
	}
	sort.Strings(allFamilies)

	var mainLib string
	for i := range bps {
		bp := &bps[i]
		if bp.Main {
			mainLib = bp.Name
		}
	}

	// DT_NEEDED edges: the main library depends on every other blueprint
	// library, mirroring how a framework core pulls in its vendor stack. The
	// edge list is a function of the blueprint set alone — never of tail size
	// or framework name — so seeded libraries stay byte-identical across the
	// installs that share them. Tail libraries get no incoming edges: like
	// Python extension modules, they are roots the loader opens directly, and
	// ingestion's dependency closure treats them as such.
	mainNeeded := func(self string) []string {
		if self != mainLib {
			return nil
		}
		var needed []string
		for i := range bps {
			if bps[i].Name != self {
				needed = append(needed, bps[i].Name)
			}
		}
		return needed
	}

	for i := range bps {
		bp := &bps[i]
		lib, initFuncs, famFuncs, err := buildLibrary(framework, bp, universe, allFamilies, mainNeeded(bp.Name))
		if err != nil {
			return nil, err
		}
		in.Libs[bp.Name] = lib
		in.LibNames = append(in.LibNames, bp.Name)
		for _, f := range initFuncs {
			in.InitCalls = append(in.InitCalls, LibFunc{Lib: bp.Name, Func: f})
		}
		for fam, funcs := range famFuncs {
			for _, f := range funcs {
				in.FamilyCalls[fam] = append(in.FamilyCalls[fam], LibFunc{Lib: bp.Name, Func: f})
			}
		}
		for _, fam := range bp.Families {
			if prev, dup := in.FamilyLib[fam]; dup {
				return nil, fmt.Errorf("mlframework: family %q hosted by both %s and %s", fam, prev, bp.Name)
			}
			in.FamilyLib[fam] = bp.Name
		}
	}
	_ = mainLib

	// Long tail of dependency libraries (CPU only).
	for i := 0; i < tailLibs; i++ {
		bp := tailBlueprint(framework, i)
		lib, initFuncs, _, err := buildLibrary(framework, &bp, universe, nil, nil)
		if err != nil {
			return nil, err
		}
		in.Libs[bp.Name] = lib
		in.LibNames = append(in.LibNames, bp.Name)
		for _, f := range initFuncs {
			in.InitCalls = append(in.InitCalls, LibFunc{Lib: bp.Name, Func: f})
		}
	}
	return in, nil
}

// tailNames are realistic sonames for the dependency tail.
var tailNames = []string{
	"libpython3.10.so.1.0", "libstdc++.so.6", "libm.so.6", "libz.so.1",
	"libssl.so.3", "libcrypto.so.3", "libprotobuf.so.32", "libomp.so.5",
	"libjpeg.so.8", "libpng16.so.16", "libmkl_core.so.2", "libopenblas.so.0",
	"libnuma.so.1", "libuv.so.1", "libzstd.so.1", "liblz4.so.1",
	"libsnappy.so.1", "libre2.so.9", "libabsl_base.so", "libgrpc.so.29",
}

func tailBlueprint(framework string, i int) Blueprint {
	var name string
	if i < len(tailNames) {
		name = tailNames[i]
	} else {
		name = fmt.Sprintf("libdep_%03d.so", i)
	}
	h := det(framework, "tail", name)
	// TensorFlow initializes far more of its dependency tail at import time
	// ("used bloat", paper §5), which is why its CPU code reduces less.
	initLo, initHi, facLo, facHi := 15, 45, 60, 85
	if framework == TensorFlow {
		initLo, initHi, facLo, facHi = 25, 55, 70, 95
	}
	return Blueprint{
		Name:               name,
		Funcs:              detRange(h, 6, 24),
		InitFrac:           float64(detRange(h>>8, initLo, initHi)) / 100,
		AvgFuncSize:        detRange(h>>16, 24, 64),
		UsedFuncSizeFactor: float64(detRange(h>>24, facLo, facHi)) / 10,
		OtherBytes:         detRange(h>>32, 2048, 12288),
	}
}

// archScale returns the code-size multiplier for one architecture.
func archScale(bp *Blueprint, arch gpuarch.SM) float64 {
	if s, ok := bp.ArchScales[arch]; ok {
		return s
	}
	if arch < gpuarch.SM75 {
		if bp.OldArchScale != 0 {
			return bp.OldArchScale
		}
		return 0.12
	}
	return 1.0
}

// familyUsed reports whether the family appears in the hosted (not bloat)
// family list — used to scale bloat-family engines down.
func familyUsed(bp *Blueprint, fam string) bool {
	for _, f := range bp.Families {
		if f == fam {
			return true
		}
	}
	return false
}

// buildLibrary generates one ELF shared library plus its runtime metadata:
// the init function names and per-family dispatch function names.
func buildLibrary(framework string, bp *Blueprint, universe map[gpuarch.SM]map[string][]string, allFamilies []string, needed []string) (*elfx.Library, []string, map[string][]string, error) {
	base := strings.TrimSuffix(strings.TrimPrefix(bp.Name, "lib"), ".so")
	base = strings.SplitN(base, ".", 2)[0]
	seed := bp.Seed
	if seed == "" {
		seed = framework
	}
	b := elfx.NewBuilder(bp.Name)
	for _, n := range needed {
		b.AddNeeded(n)
	}

	if bp.SetupFuncsPerFamily == 0 {
		bp.SetupFuncsPerFamily = 4
	}
	if bp.UsedFuncSizeFactor == 0 {
		bp.UsedFuncSizeFactor = 1.5
	}
	if bp.BloatFamilyEngineScale == 0 {
		bp.BloatFamilyEngineScale = 0.5
	}

	// ---- CPU functions ----
	var initFuncs []string
	famFuncs := make(map[string][]string)
	usedSize := int(float64(bp.AvgFuncSize) * bp.UsedFuncSizeFactor)

	nInit := int(float64(bp.Funcs) * bp.InitFrac)
	for i := 0; i < nInit; i++ {
		name := fmt.Sprintf("%s_init_%04d", base, i)
		b.AddFunction(name, jitter(usedSize, det(seed, bp.Name, name)))
		initFuncs = append(initFuncs, name)
	}
	addFamilyFuncs := func(fam, kind string, count int) {
		for i := 0; i < count; i++ {
			name := fmt.Sprintf("%s_%s_%s_%d", base, fam, kind, i)
			b.AddFunction(name, jitter(usedSize, det(seed, bp.Name, name)))
			famFuncs[fam] = append(famFuncs[fam], name)
		}
	}
	for _, fam := range bp.Families {
		addFamilyFuncs(fam, "dispatch", bp.SetupFuncsPerFamily)
	}
	if bp.Main {
		// The core library wraps every family in the install.
		for _, fam := range allFamilies {
			if !familyUsed(bp, fam) {
				addFamilyFuncs(fam, "wrap", 2)
			}
		}
	}
	// Remaining functions are bloat.
	nUsed := nInit
	for _, fs := range famFuncs {
		nUsed += len(fs)
	}
	for i := nUsed; i < bp.Funcs; i++ {
		name := fmt.Sprintf("%s_fn_%05d", base, i)
		b.AddFunction(name, jitter(bp.AvgFuncSize, det(seed, bp.Name, name)))
	}

	// ---- GPU code ----
	if bp.HasGPU() {
		// Two regions, as real fatbins typically interleave; split archs.
		regions := make([]fatbin.Region, 2)
		for ai, arch := range bp.Archs {
			reg := &regions[ai%2]
			scale := archScale(bp, arch)
			fine := false
			for _, fa := range bp.FineGrainedArchs {
				if fa == arch {
					fine = true
				}
			}
			// Hosted families: engine (or per-variant) cubins with the
			// kernel universe.
			for _, fam := range bp.Families {
				names := universe[arch][fam]
				if len(names) == 0 {
					// Family unused by any supported workload: synthesize
					// plausible variants (still reachable in principle).
					for v := 0; v < 6; v++ {
						names = append(names, fmt.Sprintf("%s_v%d_fwd", fam, v))
					}
				}
				if err := addFamilyCubins(reg, bp, arch, fam, names, scale, fine, 1.0); err != nil {
					return nil, nil, nil, err
				}
			}
			// Bloat families: smaller engines, never referenced.
			for _, fam := range bp.BloatFamilies {
				var names []string
				for v := 0; v < 6; v++ {
					names = append(names, fmt.Sprintf("%s_v%d_fwd", fam, v))
				}
				if err := addFamilyCubins(reg, bp, arch, fam, names, scale, false, bp.BloatFamilyEngineScale); err != nil {
					return nil, nil, nil, err
				}
			}
			// Anonymous bloat cubins.
			for i := 0; i < bp.BloatCubinsPerArch; i++ {
				c := cubin.New(arch)
				for j := 0; j < max(1, bp.BloatKernelsPerCubin); j++ {
					kname := fmt.Sprintf("%s_blk%d_%d_%d_fwd", base, arch, i, j)
					size := jitter(int(float64(bp.BloatKernelSize)*scale), det(seed, bp.Name, kname))
					c.AddKernel(cubin.Kernel{Name: kname, Code: codeFill(kname, size), Flags: cubin.FlagEntry})
				}
				blob, err := c.Marshal()
				if err != nil {
					return nil, nil, nil, err
				}
				reg.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: arch, Payload: blob})
			}
		}
		fb := &fatbin.FatBin{Regions: regions}
		blob, err := fb.Marshal()
		if err != nil {
			return nil, nil, nil, err
		}
		b.SetFatbin(blob)
	}

	if bp.OtherBytes > 0 {
		b.SetRodata(codeFill(bp.Name+"/rodata", bp.OtherBytes))
	}

	data, err := b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	lib, err := elfx.Parse(bp.Name, data)
	if err != nil {
		return nil, nil, nil, err
	}
	return lib, initFuncs, famFuncs, nil
}

// addFamilyCubins adds the family's kernels for one arch: one engine cubin
// holding every variant (plus two device-only child kernels launched by the
// first entry), or one cubin per variant when fine-grained.
func addFamilyCubins(reg *fatbin.Region, bp *Blueprint, arch gpuarch.SM, fam string, names []string, scale float64, fine bool, engineScale float64) error {
	ksize := func(kname string) int {
		return jitter(int(float64(bp.UsedKernelSize)*scale*engineScale), det(bp.Name, fam, kname))
	}
	emit := func(c *cubin.Cubin) error {
		blob, err := c.Marshal()
		if err != nil {
			return err
		}
		reg.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: arch, Payload: blob})
		return nil
	}
	if fine {
		for _, kname := range names {
			c := cubin.New(arch)
			root := c.AddKernel(cubin.Kernel{Name: kname, Code: codeFill(kname, ksize(kname)), Flags: cubin.FlagEntry})
			child := c.AddKernel(cubin.Kernel{
				Name:  kname + "_dev0",
				Code:  codeFill(kname+"_dev0", ksize(kname)/4+16),
				Flags: cubin.FlagDeviceOnly,
			})
			c.Kernels[root].Launches = []int{child}
			if err := emit(c); err != nil {
				return err
			}
		}
		return nil
	}
	c := cubin.New(arch)
	var first = -1
	for _, kname := range names {
		idx := c.AddKernel(cubin.Kernel{Name: kname, Code: codeFill(kname, ksize(kname)), Flags: cubin.FlagEntry})
		if first < 0 {
			first = idx
		}
	}
	// Device-only children: the family's device-side support code (sized by
	// EngineBase), launched from the first entry kernel, invisible to the
	// kernel detector, retained only because the whole cubin is.
	if first >= 0 {
		base := int(float64(bp.EngineBase) * scale * engineScale)
		c1 := c.AddKernel(cubin.Kernel{
			Name:  fmt.Sprintf("%s_%d_dev0", fam, arch),
			Code:  codeFill(fam+"dev0", base/2+16),
			Flags: cubin.FlagDeviceOnly,
		})
		c2 := c.AddKernel(cubin.Kernel{
			Name:  fmt.Sprintf("%s_%d_dev1", fam, arch),
			Code:  codeFill(fam+"dev1", base/2+16),
			Flags: cubin.FlagDeviceOnly,
		})
		c.Kernels[first].Launches = []int{c1}
		c.Kernels[c1].Launches = []int{c2}
	}
	return emit(c)
}

// codeFill produces deterministic non-zero bytes.
func codeFill(seed string, size int) []byte {
	if size < 8 {
		size = 8
	}
	out := make([]byte, size)
	h := det("code", seed)
	for i := range out {
		v := byte(h >> (uint(i%8) * 8))
		if v == 0 {
			v = 0x5A
		}
		out[i] = v
		if i%8 == 7 {
			h = h*6364136223846793005 + 1442695040888963407
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
