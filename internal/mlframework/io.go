package mlframework

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"negativaml/internal/elfx"
)

// ManifestName is the metadata file written next to the libraries.
const ManifestName = "install.json"

// Manifest is the serializable install metadata (everything except library
// bytes, which live in the .so files themselves).
type Manifest struct {
	Framework       string               `json:"framework"`
	Version         string               `json:"version"`
	LibNames        []string             `json:"lib_names"`
	InitCalls       []LibFunc            `json:"init_calls"`
	FamilyCalls     map[string][]LibFunc `json:"family_calls"`
	FamilyLib       map[string]string    `json:"family_lib"`
	BaseHeapCPU     int64                `json:"base_heap_cpu"`
	GPUPoolFraction float64              `json:"gpu_pool_fraction"`
}

// Validate rejects manifests no install could have written: a manifest names
// the framework and at least one library, exactly once each. Callers feeding
// untrusted trees (ingestion) rely on this to fail loudly instead of
// building a half-empty install.
func (m *Manifest) Validate() error {
	if m.Framework == "" {
		return fmt.Errorf("mlframework: manifest missing framework")
	}
	if len(m.LibNames) == 0 {
		return fmt.Errorf("mlframework: manifest lists no libraries")
	}
	seen := make(map[string]bool, len(m.LibNames))
	for _, name := range m.LibNames {
		if name == "" {
			return fmt.Errorf("mlframework: manifest has an empty library name")
		}
		if name != filepath.Base(name) {
			return fmt.Errorf("mlframework: manifest library name %q is not a bare file name", name)
		}
		if seen[name] {
			return fmt.Errorf("mlframework: manifest lists %s twice", name)
		}
		seen[name] = true
	}
	return nil
}

// WriteTo materializes the install on disk: one file per shared library
// plus install.json with the runtime metadata. The directory is created if
// needed.
func (in *Install) WriteTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mlframework: %w", err)
	}
	for _, name := range in.LibNames {
		lib := in.Libs[name]
		if err := os.WriteFile(filepath.Join(dir, name), lib.Data, 0o644); err != nil {
			return fmt.Errorf("mlframework: write %s: %w", name, err)
		}
	}
	m := Manifest{
		Framework:       in.Framework,
		Version:         in.Version,
		LibNames:        in.LibNames,
		InitCalls:       in.InitCalls,
		FamilyCalls:     in.FamilyCalls,
		FamilyLib:       in.FamilyLib,
		BaseHeapCPU:     in.BaseHeapCPU,
		GPUPoolFraction: in.GPUPoolFraction,
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("mlframework: marshal manifest: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), blob, 0o644)
}

// ReadManifest loads and validates the install.json in dir without touching
// the library files. Ingestion uses it to recover runtime metadata while
// sourcing the library bytes through its own classified walk.
func ReadManifest(dir string) (*Manifest, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("mlframework: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("mlframework: parse manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Install converts the manifest plus already-parsed libraries into an
// Install. Every manifest library must be present: a partial tree would
// profile as a smaller install and silently under-retain.
func (m *Manifest) Install(libs map[string]*elfx.Library) (*Install, error) {
	in := &Install{
		Framework:       m.Framework,
		Version:         m.Version,
		LibNames:        m.LibNames,
		Libs:            make(map[string]*elfx.Library, len(m.LibNames)),
		InitCalls:       m.InitCalls,
		FamilyCalls:     m.FamilyCalls,
		FamilyLib:       m.FamilyLib,
		BaseHeapCPU:     m.BaseHeapCPU,
		GPUPoolFraction: m.GPUPoolFraction,
	}
	for _, name := range m.LibNames {
		lib, ok := libs[name]
		if !ok || lib == nil {
			return nil, fmt.Errorf("mlframework: manifest names %s but the tree has no such library", name)
		}
		if lib.Soname != "" && lib.Soname != name {
			return nil, fmt.Errorf("mlframework: %s carries DT_SONAME %q (mismatched manifest?)", name, lib.Soname)
		}
		in.Libs[name] = lib
	}
	return in, nil
}

// ReadFrom loads an install previously written with WriteTo.
func ReadFrom(dir string) (*Install, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	libs := make(map[string]*elfx.Library, len(m.LibNames))
	for _, name := range m.LibNames {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("mlframework: %w", err)
		}
		lib, err := elfx.Parse(name, data)
		if err != nil {
			return nil, fmt.Errorf("mlframework: %s: %w", name, err)
		}
		libs[name] = lib
	}
	return m.Install(libs)
}
