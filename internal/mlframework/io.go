package mlframework

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"negativaml/internal/elfx"
)

// manifestName is the metadata file written next to the libraries.
const manifestName = "install.json"

// manifest is the serializable install metadata (everything except library
// bytes, which live in the .so files themselves).
type manifest struct {
	Framework       string               `json:"framework"`
	Version         string               `json:"version"`
	LibNames        []string             `json:"lib_names"`
	InitCalls       []LibFunc            `json:"init_calls"`
	FamilyCalls     map[string][]LibFunc `json:"family_calls"`
	FamilyLib       map[string]string    `json:"family_lib"`
	BaseHeapCPU     int64                `json:"base_heap_cpu"`
	GPUPoolFraction float64              `json:"gpu_pool_fraction"`
}

// WriteTo materializes the install on disk: one file per shared library
// plus install.json with the runtime metadata. The directory is created if
// needed.
func (in *Install) WriteTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mlframework: %w", err)
	}
	for _, name := range in.LibNames {
		lib := in.Libs[name]
		if err := os.WriteFile(filepath.Join(dir, name), lib.Data, 0o644); err != nil {
			return fmt.Errorf("mlframework: write %s: %w", name, err)
		}
	}
	m := manifest{
		Framework:       in.Framework,
		Version:         in.Version,
		LibNames:        in.LibNames,
		InitCalls:       in.InitCalls,
		FamilyCalls:     in.FamilyCalls,
		FamilyLib:       in.FamilyLib,
		BaseHeapCPU:     in.BaseHeapCPU,
		GPUPoolFraction: in.GPUPoolFraction,
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("mlframework: marshal manifest: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, manifestName), blob, 0o644)
}

// ReadFrom loads an install previously written with WriteTo.
func ReadFrom(dir string) (*Install, error) {
	blob, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("mlframework: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("mlframework: parse manifest: %w", err)
	}
	in := &Install{
		Framework:       m.Framework,
		Version:         m.Version,
		LibNames:        m.LibNames,
		Libs:            make(map[string]*elfx.Library, len(m.LibNames)),
		InitCalls:       m.InitCalls,
		FamilyCalls:     m.FamilyCalls,
		FamilyLib:       m.FamilyLib,
		BaseHeapCPU:     m.BaseHeapCPU,
		GPUPoolFraction: m.GPUPoolFraction,
	}
	for _, name := range m.LibNames {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("mlframework: %w", err)
		}
		lib, err := elfx.Parse(name, data)
		if err != nil {
			return nil, fmt.Errorf("mlframework: %s: %w", name, err)
		}
		in.Libs[name] = lib
	}
	return in, nil
}
