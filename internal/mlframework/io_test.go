package mlframework

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := gen(t, PyTorch, 3)
	if err := in.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Framework != in.Framework || got.Version != in.Version {
		t.Error("metadata lost")
	}
	if !reflect.DeepEqual(got.LibNames, in.LibNames) {
		t.Error("lib order lost")
	}
	if !reflect.DeepEqual(got.FamilyLib, in.FamilyLib) {
		t.Error("family routing lost")
	}
	if got.GPUPoolFraction != in.GPUPoolFraction || got.BaseHeapCPU != in.BaseHeapCPU {
		t.Error("resource metadata lost")
	}
	if len(got.InitCalls) != len(in.InitCalls) {
		t.Error("init calls lost")
	}
	for name, lib := range in.Libs {
		if !bytes.Equal(got.Libs[name].Data, lib.Data) {
			t.Errorf("%s bytes differ after round trip", name)
		}
	}
	// The written .so files are real ELF files.
	fi, err := os.Stat(filepath.Join(dir, "libtorch_cuda.so"))
	if err != nil || fi.Size() == 0 {
		t.Fatalf("library file missing: %v", err)
	}
}

// TestReadFromErrors pins the failure mode of every way a written tree can
// go bad: each case must produce an error mentioning the offending piece,
// never a partial install.
func TestReadFromErrors(t *testing.T) {
	writeTree := func(t *testing.T) (string, *Install) {
		t.Helper()
		dir := t.TempDir()
		in := gen(t, PyTorch, 2)
		if err := in.WriteTo(dir); err != nil {
			t.Fatal(err)
		}
		return dir, in
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string, in *Install)
		errHint string
	}{
		{
			name:    "missing manifest",
			corrupt: func(t *testing.T, dir string, in *Install) { os.Remove(filepath.Join(dir, ManifestName)) },
			errHint: ManifestName,
		},
		{
			name: "corrupt manifest JSON",
			corrupt: func(t *testing.T, dir string, in *Install) {
				os.WriteFile(filepath.Join(dir, ManifestName), []byte("{bad"), 0o644)
			},
			errHint: "parse manifest",
		},
		{
			name: "manifest missing framework",
			corrupt: func(t *testing.T, dir string, in *Install) {
				os.WriteFile(filepath.Join(dir, ManifestName), []byte(`{"lib_names":["libx.so"]}`), 0o644)
			},
			errHint: "missing framework",
		},
		{
			name: "manifest with no libraries",
			corrupt: func(t *testing.T, dir string, in *Install) {
				os.WriteFile(filepath.Join(dir, ManifestName), []byte(`{"framework":"PyTorch"}`), 0o644)
			},
			errHint: "no libraries",
		},
		{
			name: "manifest with duplicate library",
			corrupt: func(t *testing.T, dir string, in *Install) {
				os.WriteFile(filepath.Join(dir, ManifestName),
					[]byte(`{"framework":"PyTorch","lib_names":["libm.so.6","libm.so.6"]}`), 0o644)
			},
			errHint: "twice",
		},
		{
			name: "manifest with path-traversal name",
			corrupt: func(t *testing.T, dir string, in *Install) {
				os.WriteFile(filepath.Join(dir, ManifestName),
					[]byte(`{"framework":"PyTorch","lib_names":["../libm.so.6"]}`), 0o644)
			},
			errHint: "bare file name",
		},
		{
			name: "partial tree: a listed library file is gone",
			corrupt: func(t *testing.T, dir string, in *Install) {
				os.Remove(filepath.Join(dir, in.LibNames[len(in.LibNames)-1]))
			},
			errHint: "no such file",
		},
		{
			name: "listed library is not an ELF file",
			corrupt: func(t *testing.T, dir string, in *Install) {
				script := "#!/bin/sh\n" + strings.Repeat("echo not a shared object\n", 8)
				os.WriteFile(filepath.Join(dir, in.LibNames[0]), []byte(script), 0o644)
			},
			errHint: "ELF magic",
		},
		{
			name: "mismatched manifest: library file swapped for another soname",
			corrupt: func(t *testing.T, dir string, in *Install) {
				other := in.Libs["libtorch_cpu.so"]
				os.WriteFile(filepath.Join(dir, "libtorch_cuda.so"), other.Data, 0o644)
			},
			errHint: "DT_SONAME",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, in := writeTree(t)
			tc.corrupt(t, dir, in)
			_, err := ReadFrom(dir)
			if err == nil {
				t.Fatal("corrupted tree read back without error")
			}
			if !strings.Contains(err.Error(), tc.errHint) {
				t.Errorf("error %q does not mention %q", err, tc.errHint)
			}
		})
	}
}
