package mlframework

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := gen(t, PyTorch, 3)
	if err := in.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Framework != in.Framework || got.Version != in.Version {
		t.Error("metadata lost")
	}
	if !reflect.DeepEqual(got.LibNames, in.LibNames) {
		t.Error("lib order lost")
	}
	if !reflect.DeepEqual(got.FamilyLib, in.FamilyLib) {
		t.Error("family routing lost")
	}
	if got.GPUPoolFraction != in.GPUPoolFraction || got.BaseHeapCPU != in.BaseHeapCPU {
		t.Error("resource metadata lost")
	}
	if len(got.InitCalls) != len(in.InitCalls) {
		t.Error("init calls lost")
	}
	for name, lib := range in.Libs {
		if !bytes.Equal(got.Libs[name].Data, lib.Data) {
			t.Errorf("%s bytes differ after round trip", name)
		}
	}
	// The written .so files are real ELF files.
	fi, err := os.Stat(filepath.Join(dir, "libtorch_cuda.so"))
	if err != nil || fi.Size() == 0 {
		t.Fatalf("library file missing: %v", err)
	}
}

func TestReadFromErrors(t *testing.T) {
	if _, err := ReadFrom(t.TempDir()); err == nil {
		t.Error("missing manifest should fail")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, manifestName), []byte("{bad"), 0o644)
	if _, err := ReadFrom(dir); err == nil {
		t.Error("corrupt manifest should fail")
	}
	// Manifest referencing a missing library file.
	os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"lib_names":["libx.so"]}`), 0o644)
	if _, err := ReadFrom(dir); err == nil {
		t.Error("missing library should fail")
	}
}
