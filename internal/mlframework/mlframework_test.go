package mlframework

import (
	"bytes"
	"strings"
	"testing"

	"negativaml/internal/cubin"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
	"negativaml/internal/models"
)

func gen(t *testing.T, fw string, tail int) *Install {
	t.Helper()
	in, err := Generate(Config{Framework: fw, TailLibs: tail})
	if err != nil {
		t.Fatalf("Generate(%s): %v", fw, err)
	}
	return in
}

func TestGenerateAllFrameworks(t *testing.T) {
	for _, fw := range []string{PyTorch, TensorFlow, VLLM, HFTransformers} {
		in := gen(t, fw, 20)
		if len(in.LibNames) != len(in.Libs) {
			t.Errorf("%s: lib name/count mismatch", fw)
		}
		if len(in.InitCalls) == 0 {
			t.Errorf("%s: no init calls", fw)
		}
		if in.TotalFileSize() <= 0 {
			t.Errorf("%s: empty install", fw)
		}
		// Every init call must reference an existing, alive function.
		for _, c := range in.InitCalls[:min(len(in.InitCalls), 50)] {
			lib := in.Library(c.Lib)
			if lib == nil {
				t.Fatalf("%s: init call references missing lib %s", fw, c.Lib)
			}
			fn := lib.FindFunction(c.Func)
			if fn == nil {
				t.Fatalf("%s: init call references missing func %s in %s", fw, c.Func, c.Lib)
			}
			if !lib.FunctionAlive(fn) {
				t.Fatalf("%s: function %s generated dead", fw, c.Func)
			}
		}
	}
}

func TestUnknownFramework(t *testing.T) {
	if _, err := Generate(Config{Framework: "Caffe"}); err == nil {
		t.Error("unknown framework should fail")
	}
}

// Every kernel a supported workload resolves must exist in the hosting
// library's fatbin for the device architecture.
func TestWorkloadKernelsExist(t *testing.T) {
	in := gen(t, PyTorch, 0)
	graphs := []*models.Graph{
		models.MobileNetV2(true, 16), models.MobileNetV2(false, 1),
		models.Transformer(true, 128), models.Transformer(false, 32),
	}
	for _, arch := range []gpuarch.SM{gpuarch.SM75, gpuarch.SM80, gpuarch.SM90} {
		for _, g := range graphs {
			for i := range g.Ops {
				op := &g.Ops[i]
				libName, ok := in.FamilyLib[op.Family]
				if !ok {
					t.Fatalf("family %q not hosted anywhere", op.Family)
				}
				lib := in.Library(libName)
				fb, has, err := lib.Fatbin()
				if err != nil || !has {
					t.Fatalf("%s: fatbin: %v", libName, err)
				}
				kname := op.KernelFor(arch, 0)
				if !fatbinHasKernel(t, fb, arch, kname) {
					t.Errorf("%s misses kernel %q for %s", libName, kname, arch)
				}
			}
		}
	}
}

func TestVLLMHostsPagedAttentionAndComm(t *testing.T) {
	in := gen(t, VLLM, 0)
	if in.FamilyLib["paged_attention"] != "libvllm_flash_attn.so" {
		t.Errorf("paged_attention hosted by %q", in.FamilyLib["paged_attention"])
	}
	if in.FamilyLib["allreduce"] != "libnccl.so.2" {
		t.Errorf("allreduce hosted by %q", in.FamilyLib["allreduce"])
	}
	// Rank-7 comm kernel exists for distributed inference.
	lib := in.Library("libnccl.so.2")
	fb, _, err := lib.Fatbin()
	if err != nil {
		t.Fatal(err)
	}
	g := models.LLM(models.Llama2(true, 8))
	var commK string
	for i := range g.Ops {
		if g.Ops[i].PerRank {
			commK = g.Ops[i].KernelFor(gpuarch.SM80, 7)
			break
		}
	}
	if commK == "" {
		t.Fatal("no comm op in distributed graph")
	}
	if !fatbinHasKernel(t, fb, gpuarch.SM80, commK) {
		t.Errorf("libnccl misses %q", commK)
	}
}

func TestFamiliesHostedUniquely(t *testing.T) {
	for _, fw := range []string{PyTorch, TensorFlow, VLLM, HFTransformers} {
		in := gen(t, fw, 0)
		for fam, lib := range in.FamilyLib {
			if in.Library(lib) == nil {
				t.Errorf("%s: family %s hosted by missing lib %s", fw, fam, lib)
			}
			if len(in.FamilyCalls[fam]) == 0 {
				t.Errorf("%s: family %s has no dispatch functions", fw, fam)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := gen(t, PyTorch, 10)
	b := gen(t, PyTorch, 10)
	for name, la := range a.Libs {
		lb := b.Libs[name]
		if lb == nil {
			t.Fatalf("second generation missing %s", name)
		}
		if !bytes.Equal(la.Data, lb.Data) {
			t.Errorf("%s differs between generations", name)
		}
	}
}

// libtorch_cuda.so must be byte-identical between the PyTorch and
// Transformers installs (same wheel), but differ under vLLM (different
// bundled torch build — the paper excludes vLLM from Table 4 for this).
func TestTorchCudaSharedAcrossInstalls(t *testing.T) {
	pt := gen(t, PyTorch, 0).Library("libtorch_cuda.so")
	hf := gen(t, HFTransformers, 0).Library("libtorch_cuda.so")
	vl := gen(t, VLLM, 0).Library("libtorch_cuda.so")
	if !bytes.Equal(pt.Data, hf.Data) {
		t.Error("PyTorch and Transformers should share libtorch_cuda.so bytes")
	}
	if bytes.Equal(pt.Data, vl.Data) {
		t.Error("vLLM's libtorch_cuda.so should differ (different version)")
	}
}

func TestMultiArchElements(t *testing.T) {
	in := gen(t, PyTorch, 0)
	lib := in.Library("libtorch_cuda.so")
	fb, _, err := lib.Fatbin()
	if err != nil {
		t.Fatal(err)
	}
	archs := map[gpuarch.SM]int{}
	for _, e := range fb.Elements() {
		archs[e.Arch]++
	}
	if len(archs) != 7 {
		t.Errorf("libtorch_cuda should ship 7 architectures, got %d", len(archs))
	}
	// Fine-grained Hopper cubins: SM90 must have more elements than SM75.
	if archs[gpuarch.SM90] <= archs[gpuarch.SM75] {
		t.Errorf("SM90 elements (%d) should exceed SM75 (%d) — per-variant cubins", archs[gpuarch.SM90], archs[gpuarch.SM75])
	}
}

func TestTensorFlowShipsFewerArchs(t *testing.T) {
	in := gen(t, TensorFlow, 0)
	fb, _, err := in.Library("libtensorflow_cc.so.2").Fatbin()
	if err != nil {
		t.Fatal(err)
	}
	archs := map[gpuarch.SM]bool{}
	for _, e := range fb.Elements() {
		archs[e.Arch] = true
	}
	if len(archs) != 5 {
		t.Errorf("tensorflow_cc should ship 5 architectures, got %d", len(archs))
	}
}

func TestTensorFlowUsedBloat(t *testing.T) {
	pt := gen(t, PyTorch, 0)
	tf := gen(t, TensorFlow, 0)
	// TF calls far more CPU functions at init — the paper's "used bloat".
	if len(tf.InitCalls) < 3*len(pt.InitCalls) {
		t.Errorf("TF init calls (%d) should dwarf PyTorch's (%d)", len(tf.InitCalls), len(pt.InitCalls))
	}
}

func TestTailLibsGrowInstall(t *testing.T) {
	small := gen(t, PyTorch, 5)
	big := gen(t, PyTorch, 100)
	if len(big.LibNames)-len(small.LibNames) != 95 {
		t.Errorf("tail delta = %d, want 95", len(big.LibNames)-len(small.LibNames))
	}
	// Tail libraries have no GPU code.
	tailLib := big.Library(big.LibNames[len(big.LibNames)-1])
	if _, ok := tailLib.FatbinRange(); ok {
		t.Error("tail library should be CPU-only")
	}
}

func TestCloneWithLibs(t *testing.T) {
	in := gen(t, PyTorch, 2)
	orig := in.Library("libtorch_cuda.so")
	mod := append([]byte(nil), orig.Data...)
	// Zero one bloat function to make a "debloated" variant.
	for _, fn := range orig.Funcs {
		if strings.Contains(fn.Name, "_fn_") {
			for i := fn.Range.Start; i < fn.Range.End; i++ {
				mod[i] = 0
			}
			break
		}
	}
	clone, err := in.CloneWithLibs(map[string][]byte{"libtorch_cuda.so": mod})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(clone.Library("libtorch_cuda.so").Data, orig.Data) {
		t.Error("clone should carry replaced bytes")
	}
	if in.Library("libtorch_cuda.so") != orig {
		t.Error("original install must be untouched")
	}
	if clone.Library("libtorch_cpu.so") != in.Library("libtorch_cpu.so") {
		t.Error("unreplaced libs should be shared")
	}
	if _, err := in.CloneWithLibs(map[string][]byte{"libtorch_cpu.so": {1, 2, 3}}); err == nil {
		t.Error("invalid replacement bytes should fail")
	}
}

func TestGPUPoolFractions(t *testing.T) {
	if gen(t, PyTorch, 0).GPUPoolFraction != 0 {
		t.Error("PyTorch should not preallocate")
	}
	if gen(t, TensorFlow, 0).GPUPoolFraction == 0 {
		t.Error("TensorFlow preallocates GPU memory")
	}
	if gen(t, VLLM, 0).GPUPoolFraction == 0 {
		t.Error("vLLM preallocates the KV-cache pool")
	}
}

func fatbinHasKernel(t *testing.T, fb *fatbin.FatBin, arch gpuarch.SM, name string) bool {
	t.Helper()
	for _, e := range fb.Elements() {
		if e.Arch != arch || e.Kind != fatbin.KindCubin {
			continue
		}
		c, err := cubin.Parse(e.Payload)
		if err != nil {
			t.Fatalf("element %d: %v", e.Index, err)
		}
		if c.FindKernel(name) >= 0 {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
