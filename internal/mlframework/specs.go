package mlframework

import (
	"fmt"

	"negativaml/internal/gpuarch"
	"negativaml/internal/models"
)

// Framework identifiers matching Table 1.
const (
	PyTorch        = "PyTorch"
	TensorFlow     = "TensorFlow"
	VLLM           = "vLLM"
	HFTransformers = "Transformers"
)

// Config selects a framework installation to generate.
type Config struct {
	// Framework is one of PyTorch, TensorFlow, VLLM, HFTransformers.
	Framework string
	// TailLibs sets the size of the dependency long tail; Table 2 reports
	// per-workload library counts (113 for PyTorch/MobileNetV2, 398 for
	// TensorFlow/Transformer, ...), so experiments size the tail per
	// workload.
	TailLibs int
}

// torchArchs is the seven-architecture fat binary the paper observed in a
// PyTorch library (§4.3: "elements for 6 different GPU architectures" plus
// the native one).
var torchArchs = []gpuarch.SM{
	gpuarch.SM50, gpuarch.SM60, gpuarch.SM70, gpuarch.SM75,
	gpuarch.SM80, gpuarch.SM86, gpuarch.SM90,
}

// tfArchs: TensorFlow builds ship fewer legacy targets, which yields its
// lower Reason-I share in Figure 7 (80.2% vs PyTorch's 87.8%).
var tfArchs = []gpuarch.SM{
	gpuarch.SM70, gpuarch.SM75, gpuarch.SM80, gpuarch.SM86, gpuarch.SM90,
}

// fineTuned marks the architectures for which LLM-centric libraries ship
// per-variant cubins (Ampere/Hopper-specialized kernels).
var fineTuned = []gpuarch.SM{gpuarch.SM80, gpuarch.SM90}

// primaryT4Scales concentrates fatbin bytes in the primary deployment
// targets: real fatbins ship full code for the main architectures and
// trimmed code elsewhere, which is why the paper's retained GPU-byte share
// far exceeds the retained element share.
var primaryT4Scales = map[gpuarch.SM]float64{
	gpuarch.SM50: 0.03, gpuarch.SM60: 0.04, gpuarch.SM70: 0.06,
	gpuarch.SM75: 1.0, gpuarch.SM80: 0.55, gpuarch.SM86: 0.12, gpuarch.SM90: 0.65,
}

// torchUniverseGraphs returns every workload graph the torch-based stack
// (PyTorch itself, vLLM, HF Transformers) ships kernels for. Using the full
// set for all three keeps libtorch_cuda.so byte-identical across installs,
// as on a real system where they share the same wheel.
func torchUniverseGraphs() []*models.Graph {
	graphs := []*models.Graph{
		models.MobileNetV2(true, 16), models.MobileNetV2(false, 1),
		models.Transformer(true, 128), models.Transformer(false, 32),
		models.LLM(models.Llama2(false, 1)), models.LLM(models.Llama2(true, 1)),
		models.LLM(models.Llama2(false, 8)), models.LLM(models.Llama2(true, 8)),
	}
	for _, cfg := range models.LLMZoo(true, 8) {
		graphs = append(graphs, models.LLM(cfg))
	}
	for _, cfg := range models.LLMZoo(false, 8) {
		graphs = append(graphs, models.LLM(cfg))
	}
	return graphs
}

func tfUniverseGraphs() []*models.Graph {
	return []*models.Graph{
		models.MobileNetV2(true, 16), models.MobileNetV2(false, 1),
		models.Transformer(true, 128), models.Transformer(false, 32),
	}
}

// torchStack returns the shared torch/CUDA library blueprints. vllmVariant
// grows libtorch_cuda.so slightly (the paper notes vLLM bundles a different
// torch build: 861 MB vs 841 MB).
func torchStack(vllmVariant bool) []Blueprint {
	torchCudaFuncs := 780
	torchSeed := "torch-2.3.1"
	if vllmVariant {
		torchCudaFuncs = 800
		torchSeed = "torch-2.4.0"
	}
	const cudaSeed = "cuda-stack-12"
	return []Blueprint{
		{
			Name: "libtorch_cuda.so", Main: true, Seed: torchSeed,
			Funcs: torchCudaFuncs, InitFrac: 0.08, AvgFuncSize: 48, UsedFuncSizeFactor: 1.3,
			SetupFuncsPerFamily: 2,
			Families: []string{
				"relu6", "residual_add", "softmax", "ce_loss",
				"sgd", "adam", "layernorm", "gelu", "embedding",
				"rmsnorm", "rope", "silu", "sampling", "kvcache", "attention",
			},
			BloatFamilies: []string{
				"upsample", "grid_sample", "ctc_loss", "rnn_lstm", "rnn_gru",
				"distributions", "linalg_svd", "linalg_qr", "sparse_coo", "segment_reduce",
				"histogram", "sorting", "unique", "scan", "topk_legacy", "pooling3d",
			},
			Archs: torchArchs, ArchScales: primaryT4Scales, FineGrainedArchs: fineTuned,
			UsedKernelSize: 700, EngineBase: 9000, BloatFamilyEngineScale: 0.18,
			BloatCubinsPerArch: 10, BloatKernelsPerCubin: 2, BloatKernelSize: 280,
			OtherBytes: 40 << 10,
		},
		{
			Name: "libtorch_cpu.so", Seed: torchSeed,
			Funcs: 2500, InitFrac: 0.07, AvgFuncSize: 78, UsedFuncSizeFactor: 7,
			OtherBytes: 120 << 10,
		},
		{
			Name: "libtorch_python.so", Seed: torchSeed,
			Funcs: 800, InitFrac: 0.08, AvgFuncSize: 60, UsedFuncSizeFactor: 6,
			OtherBytes: 30 << 10,
		},
		{
			Name: "libc10_cuda.so", Seed: torchSeed,
			Funcs: 180, InitFrac: 0.22, AvgFuncSize: 52, UsedFuncSizeFactor: 1.6,
			OtherBytes: 6 << 10,
		},
		{
			Name: "libcudnn_cnn_infer.so.8", Seed: cudaSeed,
			Funcs: 350, InitFrac: 0.04, AvgFuncSize: 160, UsedFuncSizeFactor: 1.3,
			Families:      []string{"conv2d", "dwconv"},
			BloatFamilies: []string{"conv2d_nhwc_legacy", "conv_winograd_lg", "conv_fft_tile"},
			Archs:         torchArchs, ArchScales: primaryT4Scales,
			UsedKernelSize: 2300, EngineBase: 18000, BloatFamilyEngineScale: 0.3,
			BloatCubinsPerArch: 6, BloatKernelsPerCubin: 3, BloatKernelSize: 600,
			OtherBytes: 16 << 10,
		},
		{
			Name: "libcudnn_ops_infer.so.8", Seed: cudaSeed,
			Funcs: 280, InitFrac: 0.05, AvgFuncSize: 120,
			Families:      []string{"batchnorm", "pool"},
			BloatFamilies: []string{"pooling_nd", "activation_nd", "tensor_transform", "reduce_nd", "norm_nd"},
			Archs:         torchArchs, ArchScales: primaryT4Scales,
			UsedKernelSize: 1100, EngineBase: 9000, BloatFamilyEngineScale: 0.3,
			BloatCubinsPerArch: 7, BloatKernelsPerCubin: 3, BloatKernelSize: 550,
			OtherBytes: 12 << 10,
		},
		{
			Name: "libcudnn_cnn_train.so.8", Seed: cudaSeed,
			Funcs: 300, InitFrac: 0.03, AvgFuncSize: 130,
			Families:      []string{"conv2d_bwd", "dwconv_bwd"},
			BloatFamilies: []string{"conv3d_train", "conv_bwd_filter_nd", "conv_bwd_data_nd", "fused_conv_bias"},
			Archs:         torchArchs, ArchScales: primaryT4Scales,
			UsedKernelSize: 1400, EngineBase: 14000, BloatFamilyEngineScale: 0.3,
			BloatCubinsPerArch: 7, BloatKernelsPerCubin: 3, BloatKernelSize: 650,
			OtherBytes: 12 << 10,
		},
		{
			Name: "libcublasLt.so.12", Seed: cudaSeed,
			Funcs: 260, InitFrac: 0.06, AvgFuncSize: 110, UsedFuncSizeFactor: 1.3,
			Families:      []string{"gemm"},
			BloatFamilies: []string{"gemm_int8_imma", "gemm_planar_complex"},
			Archs:         torchArchs, ArchScales: primaryT4Scales, FineGrainedArchs: fineTuned,
			UsedKernelSize: 900, EngineBase: 8000, BloatFamilyEngineScale: 0.35,
			BloatCubinsPerArch: 8, BloatKernelsPerCubin: 3, BloatKernelSize: 600,
			OtherBytes: 10 << 10,
		},
		{
			Name: "libcublas.so.12", Seed: cudaSeed,
			Funcs: 320, InitFrac: 0.05, AvgFuncSize: 100,
			Families:      []string{"gemm_batched"},
			BloatFamilies: []string{"gemm_legacy", "trsm", "syrk", "gemv_batched"},
			Archs:         torchArchs, ArchScales: primaryT4Scales,
			UsedKernelSize: 800, EngineBase: 7000, BloatFamilyEngineScale: 0.35,
			BloatCubinsPerArch: 7, BloatKernelsPerCubin: 3, BloatKernelSize: 550,
			OtherBytes: 10 << 10,
		},
		{
			Name: "libcusparse.so.12", Seed: cudaSeed,
			Funcs: 200, InitFrac: 0.02, AvgFuncSize: 90,
			BloatFamilies: []string{"spmm_csr", "spmv_coo", "csr2csc", "sparse_gemm"},
			Archs:         torchArchs, ArchScales: primaryT4Scales,
			UsedKernelSize: 800, EngineBase: 4000, BloatFamilyEngineScale: 0.5,
			BloatCubinsPerArch: 5, BloatKernelsPerCubin: 3, BloatKernelSize: 500,
			OtherBytes: 6 << 10,
		},
		{
			Name: "libcufft.so.11", Seed: cudaSeed,
			Funcs: 150, InitFrac: 0.02, AvgFuncSize: 80,
			BloatFamilies: []string{"fft1d", "fft2d", "fft3d"},
			Archs:         torchArchs, ArchScales: primaryT4Scales,
			UsedKernelSize: 700, EngineBase: 3500, BloatFamilyEngineScale: 0.5,
			BloatCubinsPerArch: 4, BloatKernelsPerCubin: 3, BloatKernelSize: 450,
			OtherBytes: 5 << 10,
		},
		{
			Name: "libcurand.so.10", Seed: cudaSeed,
			Funcs: 90, InitFrac: 0.03, AvgFuncSize: 70,
			Families:      []string{"dropout"},
			BloatFamilies: []string{"philox", "mtgp32"},
			Archs:         torchArchs, ArchScales: primaryT4Scales,
			UsedKernelSize: 500, EngineBase: 2500, BloatFamilyEngineScale: 0.5,
			BloatCubinsPerArch: 3, BloatKernelsPerCubin: 3, BloatKernelSize: 400,
			OtherBytes: 4 << 10,
		},
		{
			Name: "libnccl.so.2", Seed: cudaSeed,
			Funcs: 220, InitFrac: 0.07, AvgFuncSize: 90,
			Families:      []string{"allreduce", "allgather"},
			BloatFamilies: []string{"reduce_scatter", "broadcast", "alltoall"},
			Archs:         torchArchs, ArchScales: primaryT4Scales, FineGrainedArchs: fineTuned,
			UsedKernelSize: 450, EngineBase: 2500, BloatFamilyEngineScale: 0.5,
			BloatCubinsPerArch: 4, BloatKernelsPerCubin: 3, BloatKernelSize: 350,
			OtherBytes: 5 << 10,
		},
	}
}

func tfStack() []Blueprint {
	bps := []Blueprint{
		{
			Name: "libtensorflow_cc.so.2", Main: true,
			Funcs: 6700, InitFrac: 0.46, AvgFuncSize: 34, UsedFuncSizeFactor: 1.1,
			Families: []string{
				"relu6", "residual_add", "softmax", "ce_loss",
				"sgd", "adam", "layernorm", "gelu", "embedding", "attention",
			},
			BloatFamilies: []string{
				"tf_data_ops", "summary_ops", "string_ops", "lookup_ops", "ragged_ops",
				"boosted_trees", "sdca", "ctc_ops", "audio_ops", "image_ops",
				"sparse_ops_tf", "bucketize", "quantize_ops", "map_stage",
			},
			Archs: tfArchs, ArchScales: primaryT4Scales,
			UsedKernelSize: 620, EngineBase: 5200, BloatFamilyEngineScale: 0.3,
			BloatCubinsPerArch: 9, BloatKernelsPerCubin: 2, BloatKernelSize: 340,
			OtherBytes: 100 << 10,
		},
		{
			Name:  "libtensorflow_framework.so.2",
			Funcs: 1500, InitFrac: 0.38, AvgFuncSize: 42, UsedFuncSizeFactor: 1.2,
			OtherBytes: 60 << 10,
		},
	}
	// TensorFlow links the same CUDA vendor libraries; reuse the torch-stack
	// definitions except the torch-specific ones.
	for _, bp := range torchStack(false) {
		switch bp.Name {
		case "libtorch_cuda.so", "libtorch_cpu.so", "libtorch_python.so", "libc10_cuda.so", "libnccl.so.2":
			continue
		}
		// Vendor libs in the TF install host no families TF's main lib
		// already hosts; conv2d/dwconv/gemm routing stays with cuDNN/cuBLAS.
		bps = append(bps, bp)
	}
	return bps
}

func vllmExtras() []Blueprint {
	return []Blueprint{
		{
			Name:  "libvllm_flash_attn.so",
			Funcs: 120, InitFrac: 0.10, AvgFuncSize: 95, UsedFuncSizeFactor: 1.4,
			Families:         []string{"paged_attention"},
			BloatFamilies:    []string{"flash_attn_varlen", "flash_attn_train"},
			Archs:            []gpuarch.SM{gpuarch.SM75, gpuarch.SM80, gpuarch.SM86, gpuarch.SM90},
			FineGrainedArchs: fineTuned,
			UsedKernelSize:   1800, BloatFamilyEngineScale: 0.6,
			BloatCubinsPerArch: 3, BloatKernelsPerCubin: 2, BloatKernelSize: 900,
			OtherBytes: 6 << 10,
		},
		{
			Name:  "libvllm_C.so",
			Funcs: 160, InitFrac: 0.18, AvgFuncSize: 70, UsedFuncSizeFactor: 1.4,
			OtherBytes: 8 << 10,
		},
	}
}

// Generate builds a framework installation.
func Generate(cfg Config) (*Install, error) {
	switch cfg.Framework {
	case PyTorch:
		return generate(PyTorch, "2.3.1", torchStack(false), torchUniverseGraphs(),
			8, cfg.TailLibs, 350<<10, 0)
	case TensorFlow:
		return generate(TensorFlow, "2.16.2", tfStack(), tfUniverseGraphs(),
			1, cfg.TailLibs, 2600<<10, 0.88)
	case VLLM:
		bps := append(torchStack(true), vllmExtras()...)
		return generate(VLLM, "0.6.3", bps, torchUniverseGraphs(),
			8, cfg.TailLibs, 2500<<10, 0.92)
	case HFTransformers:
		return generate(HFTransformers, "4.42.3", torchStack(false), torchUniverseGraphs(),
			8, cfg.TailLibs, 600<<10, 0)
	}
	return nil, fmt.Errorf("mlframework: unknown framework %q", cfg.Framework)
}
