// Package mlruntime executes model workloads against a framework install on
// the simulated CUDA driver. It is the stand-in for "running the ML
// workload" in the paper's pipeline: the kernel detector observes the run
// through CUPTI hooks, the CPU-function profiler through the function-call
// hook, and the verifier re-runs the workload on debloated libraries and
// compares output digests.
package mlruntime
