package mlruntime

import (
	"fmt"
	"time"

	"negativaml/internal/cudasim"
	"negativaml/internal/dataset"
	"negativaml/internal/elfx"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
	"negativaml/internal/models"
)

// Workload binds a framework install, a model graph, a dataset, and a
// device setup — one row of the paper's Table 1.
type Workload struct {
	// Name labels the workload ("PyTorch/Train/MobileNetV2").
	Name    string
	Install *mlframework.Install
	Graph   *models.Graph
	// Devices are the GPUs; more than one means tensor-parallel execution
	// with one rank per device.
	Devices []gpuarch.Device
	// Mode selects eager or lazy kernel loading.
	Mode cudasim.LoadMode
	// Data is the dataset; Epochs applies to training graphs.
	Data   dataset.Dataset
	Epochs int
	// PerItemCompute is the calibrated virtual compute time per batch item
	// per unit of op weight (DESIGN.md §4).
	PerItemCompute time.Duration
}

// Options tweak a run.
type Options struct {
	// DriverSetup runs before any library is loaded; tools attach CUPTI
	// subscribers here.
	DriverSetup func(*cudasim.Driver)
	// FuncHook observes every CPU library function call (the CPU-side
	// profiler of Negativa's detection phase).
	FuncHook func(lib, fn string)
	// PhaseHook, when set, is called at run-phase transitions with "init"
	// before framework initialization and "steps" before the first step —
	// the used-bloat analyzer uses it to separate init-only functions from
	// steady-state ones.
	PhaseHook func(phase string)
	// MaxSteps caps the step count (0 = run the full dataset). Detection
	// coverage is complete after the first steps, so tests use small caps.
	MaxSteps int
}

// Result summarizes a run.
type Result struct {
	// Digest is the deterministic output digest; original and debloated
	// runs must produce identical digests.
	Digest uint64
	// ExecTime is the virtual wall-clock of the run.
	ExecTime time.Duration
	// PeakCPUBytes / PeakGPUBytes are peak memory (GPU: max across devices).
	PeakCPUBytes int64
	PeakGPUBytes int64
	// Steps and Launches count executed work.
	Steps    int
	Launches int64
}

// Cost constants local to the runtime layer.
const (
	funcCallCost      = 300 * time.Nanosecond
	weightCopyPerByte = 700 * time.Nanosecond
	stepOverhead      = 120 * time.Microsecond
)

const fnvPrime = 1099511628211

// Run executes the workload and returns its result. A missing CPU function
// (zeroed by over-aggressive compaction) or an unresolvable kernel fails the
// run — exactly how a broken debloated library fails in practice.
func Run(w Workload, opt Options) (*Result, error) {
	if len(w.Devices) == 0 {
		return nil, fmt.Errorf("mlruntime: %s: no devices", w.Name)
	}
	if w.Graph == nil || w.Install == nil {
		return nil, fmt.Errorf("mlruntime: %s: incomplete workload", w.Name)
	}

	d := cudasim.NewDefault()
	if opt.DriverSetup != nil {
		opt.DriverSetup(d)
	}
	var ctxs []*cudasim.Context
	for _, dev := range w.Devices {
		ctxs = append(ctxs, d.NewContext(dev, w.Mode))
	}

	// ---- Library loading (framework import) ----
	type libState struct {
		lib   *elfx.Library
		funcs map[string]*elfx.Function
		alive map[string]bool
		mods  []*cudasim.Module
	}
	libs := make(map[string]*libState, len(w.Install.LibNames))
	for _, name := range w.Install.LibNames {
		lib := w.Install.Library(name)
		st := &libState{
			lib:   lib,
			funcs: make(map[string]*elfx.Function, len(lib.Funcs)),
			alive: make(map[string]bool, len(lib.Funcs)),
		}
		for i := range lib.Funcs {
			fn := &lib.Funcs[i]
			st.funcs[fn.Name] = fn
			st.alive[fn.Name] = lib.FunctionAlive(fn)
		}
		for _, ctx := range ctxs {
			m, err := ctx.LoadModule(lib)
			if err != nil {
				return nil, fmt.Errorf("mlruntime: %s: %w", w.Name, err)
			}
			st.mods = append(st.mods, m)
		}
		libs[name] = st
	}

	digest := uint64(1469598103934665603)
	mix := func(v uint64) { digest = (digest ^ v) * fnvPrime }
	mixs := func(s string) {
		for i := 0; i < len(s); i++ {
			digest = (digest ^ uint64(s[i])) * fnvPrime
		}
	}

	callFunc := func(lf mlframework.LibFunc) error {
		st := libs[lf.Lib]
		if st == nil {
			return fmt.Errorf("mlruntime: %s: missing library %s", w.Name, lf.Lib)
		}
		if !st.alive[lf.Func] {
			return fmt.Errorf("mlruntime: %s: function %s in %s is missing or zeroed (SIGSEGV)", w.Name, lf.Func, lf.Lib)
		}
		if opt.FuncHook != nil {
			opt.FuncHook(lf.Lib, lf.Func)
		}
		d.Clock.Advance(funcCallCost)
		return nil
	}

	// ---- Framework init ----
	if opt.PhaseHook != nil {
		opt.PhaseHook("init")
	}
	d.AllocCPU(w.Install.BaseHeapCPU + w.Graph.HeapCPU + w.Data.ItemBytes*int64(w.Graph.Batch))
	for _, c := range w.Install.InitCalls {
		if err := callFunc(c); err != nil {
			return nil, err
		}
	}

	// ---- Weights, optimizer state, preallocation pools ----
	// Weights are staged through the host in chunks (an eighth of the model
	// at a time), so host peak reflects the staging buffer, not a full copy.
	nDev := int64(len(ctxs))
	staging := w.Graph.WeightBytes / 8
	if staging < 1 {
		staging = w.Graph.WeightBytes
	}
	d.AllocCPU(staging)
	perDevWeights := w.Graph.WeightBytes / nDev
	for _, ctx := range ctxs {
		ctx.AllocGPU(perDevWeights)
	}
	d.Clock.Advance(time.Duration(w.Graph.WeightBytes) * weightCopyPerByte)
	d.FreeCPU(staging)
	if w.Graph.Train && w.Graph.OptimizerStateFactor > 0 {
		for _, ctx := range ctxs {
			ctx.AllocGPU(int64(float64(perDevWeights) * w.Graph.OptimizerStateFactor))
		}
	}
	if f := w.Install.GPUPoolFraction; f > 0 {
		for _, ctx := range ctxs {
			pool := int64(f*float64(ctx.Device.MemBytes)) - ctx.GPU.Cur
			if pool > 0 {
				ctx.AllocGPU(pool)
			}
		}
	}

	// ---- Resolve kernels (first use) and autotune ----
	type resolved struct {
		op  *models.Op
		fns []*cudasim.Function // one per rank
	}
	plan := make([]resolved, 0, len(w.Graph.Ops))
	for i := range w.Graph.Ops {
		op := &w.Graph.Ops[i]
		hostLib, ok := w.Install.FamilyLib[op.Family]
		if !ok {
			return nil, fmt.Errorf("mlruntime: %s: no library hosts family %q", w.Name, op.Family)
		}
		st := libs[hostLib]
		r := resolved{op: op}
		for rank, ctx := range ctxs {
			m := st.mods[rank]
			kname := op.KernelFor(ctx.Device.Arch, rank)
			// Frameworks probe autotune candidates before resolving the
			// winner; candidates pass through cuModuleGetFunction (and are
			// therefore detected as used) but are launched at most once.
			for _, cand := range op.AutotuneKernels(ctx.Device.Arch, rank) {
				if _, err := m.GetFunction(cand); err != nil {
					return nil, fmt.Errorf("mlruntime: %s: autotune %s: %w", w.Name, cand, err)
				}
			}
			fn, err := m.GetFunction(kname)
			if err != nil {
				return nil, fmt.Errorf("mlruntime: %s: %w", w.Name, err)
			}
			r.fns = append(r.fns, fn)
			mixs(kname)
		}
		plan = append(plan, r)
	}

	// ---- Steps ----
	steps := w.Data.Steps(w.Graph.Train, w.Graph.Batch, w.Epochs)
	if opt.MaxSteps > 0 && steps > opt.MaxSteps {
		steps = opt.MaxSteps
	}
	totalWeight := w.Graph.TotalWeight()
	if totalWeight <= 0 {
		totalWeight = 1
	}
	computeFor := make([]time.Duration, len(plan))
	for i, r := range plan {
		computeFor[i] = time.Duration(float64(w.PerItemCompute) * float64(w.Graph.Batch) * r.op.Weight / totalWeight)
	}
	// Activations live inside the preallocation pool when the framework has
	// one (TensorFlow's allocator, vLLM's KV-cache pool), so they only add
	// to peak GPU memory on frameworks without a pool.
	actPerDev := w.Graph.ActivationBytesPerItem * int64(w.Graph.Batch) / nDev
	if w.Install.GPUPoolFraction > 0 {
		actPerDev = 0
	}

	famCalls := make([][]mlframework.LibFunc, len(plan))
	for i, r := range plan {
		famCalls[i] = w.Install.FamilyCalls[r.op.Family]
	}

	if opt.PhaseHook != nil {
		opt.PhaseHook("steps")
	}
	for s := 0; s < steps; s++ {
		for _, ctx := range ctxs {
			ctx.AllocGPU(actPerDev)
		}
		for i, r := range plan {
			for _, lf := range famCalls[i] {
				if err := callFunc(lf); err != nil {
					return nil, err
				}
			}
			for rank := range ctxs {
				fn := r.fns[rank]
				for c := 0; c < r.op.Count; c++ {
					if err := d.Launch(fn); err != nil {
						return nil, fmt.Errorf("mlruntime: %s: %w", w.Name, err)
					}
				}
			}
			d.Clock.Advance(computeFor[i])
		}
		mix(w.Data.ItemDigest(s * w.Graph.Batch))
		d.Clock.Advance(stepOverhead)
		for _, ctx := range ctxs {
			ctx.FreeGPU(actPerDev)
		}
	}

	var peakGPU int64
	for _, ctx := range ctxs {
		if ctx.GPU.Peak > peakGPU {
			peakGPU = ctx.GPU.Peak
		}
	}
	return &Result{
		Digest:       digest,
		ExecTime:     d.Clock.Now(),
		PeakCPUBytes: d.CPU.Peak,
		PeakGPUBytes: peakGPU,
		Steps:        steps,
		Launches:     d.KernelLaunch,
	}, nil
}
