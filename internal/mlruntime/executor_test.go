package mlruntime

import (
	"strings"
	"testing"
	"time"

	"negativaml/internal/cudasim"
	"negativaml/internal/dataset"
	"negativaml/internal/elfx"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
	"negativaml/internal/models"
	"negativaml/internal/trace"
)

var ptInstall *mlframework.Install

func pytorch(t *testing.T) *mlframework.Install {
	t.Helper()
	if ptInstall == nil {
		in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 10})
		if err != nil {
			t.Fatal(err)
		}
		ptInstall = in
	}
	return ptInstall
}

func mobilenetTrain(t *testing.T) Workload {
	return Workload{
		Name:           "PyTorch/Train/MobileNetV2",
		Install:        pytorch(t),
		Graph:          models.MobileNetV2(true, 16),
		Devices:        []gpuarch.Device{gpuarch.T4},
		Mode:           cudasim.EagerLoading,
		Data:           dataset.CIFAR10,
		Epochs:         3,
		PerItemCompute: 200 * time.Microsecond,
	}
}

func TestRunDeterministic(t *testing.T) {
	w := mobilenetTrain(t)
	opt := Options{MaxSteps: 20}
	r1, err := Run(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Digest != r2.Digest {
		t.Error("digest must be deterministic")
	}
	if r1.ExecTime != r2.ExecTime || r1.PeakCPUBytes != r2.PeakCPUBytes || r1.PeakGPUBytes != r2.PeakGPUBytes {
		t.Error("virtual metrics must be deterministic")
	}
	if r1.Steps != 20 {
		t.Errorf("steps = %d, want 20 (capped)", r1.Steps)
	}
	if r1.Launches == 0 || r1.PeakCPUBytes == 0 || r1.PeakGPUBytes == 0 {
		t.Errorf("empty result: %+v", r1)
	}
}

func TestTrainingUsesMoreKernelsThanInference(t *testing.T) {
	detect := func(g *models.Graph) int {
		var kd *trace.KernelDetector
		w := mobilenetTrain(t)
		w.Graph = g
		_, err := Run(w, Options{
			MaxSteps:    3,
			DriverSetup: func(d *cudasim.Driver) { kd = trace.AttachDetector(d) },
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, ks := range kd.AllUsed() {
			n += len(ks)
		}
		return n
	}
	train := detect(models.MobileNetV2(true, 16))
	inf := detect(models.MobileNetV2(false, 1))
	if train <= inf {
		t.Errorf("training should use more kernels: %d vs %d", train, inf)
	}
}

func TestFuncHookSeesInitAndDispatch(t *testing.T) {
	w := mobilenetTrain(t)
	used := map[string]map[string]bool{}
	_, err := Run(w, Options{
		MaxSteps: 2,
		FuncHook: func(lib, fn string) {
			if used[lib] == nil {
				used[lib] = map[string]bool{}
			}
			used[lib][fn] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := used["libtorch_cuda.so"]
	if len(tc) == 0 {
		t.Fatal("no functions recorded for libtorch_cuda.so")
	}
	var haveInit, haveDispatch bool
	for fn := range tc {
		if strings.Contains(fn, "_init_") {
			haveInit = true
		}
		if strings.Contains(fn, "_dispatch_") || strings.Contains(fn, "_wrap_") {
			haveDispatch = true
		}
	}
	if !haveInit || !haveDispatch {
		t.Errorf("want init and dispatch functions, got init=%v dispatch=%v", haveInit, haveDispatch)
	}
	// Conv dispatch lives in cuDNN.
	if len(used["libcudnn_cnn_infer.so.8"]) == 0 {
		t.Error("cuDNN dispatch functions should be called")
	}
}

func TestZeroedBloatFunctionHarmless(t *testing.T) {
	w := mobilenetTrain(t)
	base, err := Run(w, Options{MaxSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	orig := w.Install.Library("libtorch_cuda.so")
	mod := append([]byte(nil), orig.Data...)
	lib, _ := elfx.Parse("x", mod)
	killed := false
	for _, fn := range lib.Funcs {
		if strings.Contains(fn.Name, "_fn_") { // bloat function
			elfx.ZeroRange(mod, fn.Range)
			killed = true
			break
		}
	}
	if !killed {
		t.Fatal("no bloat function found")
	}
	clone, err := w.Install.CloneWithLibs(map[string][]byte{"libtorch_cuda.so": mod})
	if err != nil {
		t.Fatal(err)
	}
	w2 := w
	w2.Install = clone
	got, err := Run(w2, Options{MaxSteps: 5})
	if err != nil {
		t.Fatalf("zeroing bloat must not break the run: %v", err)
	}
	if got.Digest != base.Digest {
		t.Error("digest changed after removing bloat")
	}
}

func TestZeroedUsedFunctionCrashes(t *testing.T) {
	w := mobilenetTrain(t)
	orig := w.Install.Library("libtorch_cuda.so")
	mod := append([]byte(nil), orig.Data...)
	lib, _ := elfx.Parse("x", mod)
	for _, fn := range lib.Funcs {
		if strings.Contains(fn.Name, "_init_") {
			elfx.ZeroRange(mod, fn.Range)
			break
		}
	}
	clone, err := w.Install.CloneWithLibs(map[string][]byte{"libtorch_cuda.so": mod})
	if err != nil {
		t.Fatal(err)
	}
	w2 := w
	w2.Install = clone
	if _, err := Run(w2, Options{MaxSteps: 2}); err == nil {
		t.Fatal("zeroing a used init function must fail the run")
	}
}

func TestLazyLoadingReducesMemoryAndTime(t *testing.T) {
	w := mobilenetTrain(t)
	w.Graph = models.MobileNetV2(false, 1)
	eager, err := Run(w, Options{MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	w.Mode = cudasim.LazyLoading
	lazy, err := Run(w, Options{MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.PeakCPUBytes >= eager.PeakCPUBytes {
		t.Errorf("lazy CPU %d should be below eager %d", lazy.PeakCPUBytes, eager.PeakCPUBytes)
	}
	if lazy.PeakGPUBytes >= eager.PeakGPUBytes {
		t.Errorf("lazy GPU %d should be below eager %d", lazy.PeakGPUBytes, eager.PeakGPUBytes)
	}
	if lazy.ExecTime >= eager.ExecTime {
		t.Errorf("lazy startup should be faster: %v vs %v", lazy.ExecTime, eager.ExecTime)
	}
	if lazy.Digest != eager.Digest {
		t.Error("loading mode must not change outputs")
	}
}

func TestDistributedInference(t *testing.T) {
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.VLLM, TailLibs: 5})
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]gpuarch.Device, 8)
	for i := range devices {
		devices[i] = gpuarch.A100
	}
	var kd *trace.KernelDetector
	w := Workload{
		Name:           "vLLM/Inference/Llama2-8xA100",
		Install:        in,
		Graph:          models.LLM(models.Llama2(true, 8)),
		Devices:        devices,
		Mode:           cudasim.EagerLoading,
		Data:           dataset.ManualInput,
		PerItemCompute: 40 * time.Millisecond,
	}
	r, err := Run(w, Options{
		MaxSteps:    4,
		DriverSetup: func(d *cudasim.Driver) { kd = trace.AttachDetector(d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Launches == 0 {
		t.Fatal("no launches")
	}
	ncclKernels := kd.UsedKernels("libnccl.so.2")
	ranks := map[string]bool{}
	for _, k := range ncclKernels {
		if i := strings.LastIndex(k, "_r"); i >= 0 {
			ranks[k[i:]] = true
		}
	}
	if len(ranks) != 8 {
		t.Errorf("expected comm kernels for 8 ranks, got %d (%v)", len(ranks), ncclKernels)
	}
	// Paged attention detected in the vLLM kernel library.
	if len(kd.UsedKernels("libvllm_flash_attn.so")) == 0 {
		t.Error("paged attention kernels should be detected")
	}
}

func TestVLLMPoolDominatesGPU(t *testing.T) {
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.VLLM, TailLibs: 0})
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		Name:           "vLLM/Inference/Llama2",
		Install:        in,
		Graph:          models.LLM(models.Llama2(true, 1)),
		Devices:        []gpuarch.Device{gpuarch.T4},
		Mode:           cudasim.EagerLoading,
		Data:           dataset.ManualInput,
		PerItemCompute: 40 * time.Millisecond,
	}
	r, err := Run(w, Options{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0.92 * float64(gpuarch.T4.MemBytes))
	if r.PeakGPUBytes < want {
		t.Errorf("vLLM should preallocate ~92%% of GPU memory: %d < %d", r.PeakGPUBytes, want)
	}
}

func TestRunValidation(t *testing.T) {
	w := mobilenetTrain(t)
	w.Devices = nil
	if _, err := Run(w, Options{}); err == nil {
		t.Error("no devices should fail")
	}
	w = mobilenetTrain(t)
	w.Graph = nil
	if _, err := Run(w, Options{}); err == nil {
		t.Error("nil graph should fail")
	}
}
