// Package models defines the ML workloads the paper evaluates as framework-
// agnostic operator graphs: MobileNetV2 (small CV model), a Transformer
// (medium NLP model), Llama2 (large LLM), and the nine-model LLM zoo from
// the Hugging Face Open LLM Leaderboard (Table 1, §4.5).
//
// A model is a Graph of Ops executed once per training/inference step. Each
// Op belongs to a kernel *family* (conv2d, matmul, attention, …) and a shape
// *variant*; the (family, variant, phase) triple determines the GPU kernel
// name through KernelName. The synthetic framework generator enumerates the
// same names when planting kernels into shared libraries, so whichever
// kernels a workload touches at run time are guaranteed to exist — and
// everything else in the libraries is bloat the debloater should find.
package models
