package models

import "fmt"

// LLMConfig parameterizes a decoder-only LLM inference graph.
type LLMConfig struct {
	// Name is the model name as reported in the paper's tables.
	Name string
	// ParamsB is the parameter count in billions.
	ParamsB float64
	// Layers is the number of decoder layers.
	Layers int
	// HiddenBucket buckets the hidden size ("h4k", "h8k", "h12k") — kernels
	// are specialized per bucket, so zoo models with similar hidden sizes
	// share kernels (Table 10 reports near-identical reductions across
	// models).
	HiddenBucket string
	// PagedKV enables vLLM-style paged attention kernels and the
	// preallocated KV-cache pool.
	PagedKV bool
	// Ranks is the tensor-parallel degree (1 for single GPU).
	Ranks int
}

// Llama2 is the Llama-2-7b-chat-hf configuration of Table 1.
func Llama2(pagedKV bool, ranks int) LLMConfig {
	return LLMConfig{
		Name:         "Llama2",
		ParamsB:      7,
		Layers:       32,
		HiddenBucket: "h4k",
		PagedKV:      pagedKV,
		Ranks:        ranks,
	}
}

// LLM builds an inference graph for a decoder-only LLM. One step decodes one
// token for the whole batch: per layer attention + MLP kernels, with
// collective-communication ops when tensor-parallel.
//
// LLM ops are ArchTuned: on Ampere/Hopper devices the frameworks use
// architecture-specialized kernels and autotune over several candidates —
// the mechanism behind the paper's finding that H100 and distributed runs
// retain more GPU elements than T4 runs (Tables 6 and 10).
func LLM(cfg LLMConfig) *Graph {
	attnFamily := "attention"
	attnVariant := "decode_" + cfg.HiddenBucket
	if cfg.PagedKV {
		attnFamily = "paged_attention"
		attnVariant = "v2_" + cfg.HiddenBucket
	}
	weights := scaled(cfg.ParamsB * 2 * 1000) // fp16 parameters, GB -> paper-MB
	perRank := cfg.Ranks > 1

	g := &Graph{
		Model:                  cfg.Name,
		Train:                  false,
		Batch:                  1,
		WeightBytes:            weights,
		ActivationBytesPerItem: scaled(40),
		HeapCPU:                scaled(1500), // tokenizer, scheduler, sampler state
	}
	l := cfg.Layers
	g.Ops = []Op{
		{Family: "embedding", Variant: "vocab32k_llm", Phase: Forward, Count: 1, Weight: 0.3},
		{Family: "rmsnorm", Variant: cfg.HiddenBucket, Phase: Forward, Count: 2 * l, Weight: 1},
		{Family: attnFamily, Variant: attnVariant, Phase: Forward, Count: l, Weight: 9, ArchTuned: true, Autotune: 4},
		{Family: "rope", Variant: cfg.HiddenBucket, Phase: Forward, Count: l, Weight: 0.8},
		{Family: "kvcache", Variant: "append_" + cfg.HiddenBucket, Phase: Forward, Count: l, Weight: 0.6},
		{Family: "gemm_batched", Variant: "kv_" + cfg.HiddenBucket, Phase: Forward, Count: l, Weight: 2},
		{Family: "gemm", Variant: "llm_qkv_" + cfg.HiddenBucket, Phase: Forward, Count: 2 * l, Weight: 8, ArchTuned: true, Autotune: 3},
		{Family: "gemm", Variant: "llm_mlp_" + cfg.HiddenBucket, Phase: Forward, Count: 2 * l, Weight: 9, ArchTuned: true, Autotune: 3},
		{Family: "silu", Variant: "elt", Phase: Forward, Count: l, Weight: 0.6},
		{Family: "residual_add", Variant: "elt", Phase: Forward, Count: 2 * l, Weight: 0.5},
		{Family: "sampling", Variant: "topp", Phase: Forward, Count: 1, Weight: 0.4},
	}
	if perRank {
		g.Ops = append(g.Ops,
			Op{Family: "allreduce", Variant: fmt.Sprintf("ring_tp%d", cfg.Ranks), Phase: Comm, Count: 2 * l, Weight: 2, PerRank: true},
			Op{Family: "allgather", Variant: fmt.Sprintf("tp%d", cfg.Ranks), Phase: Comm, Count: 2, Weight: 0.4, PerRank: true},
		)
	}
	return g
}
