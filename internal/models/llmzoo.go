package models

// LLMZoo returns the top-9 Open LLM Leaderboard models the paper deploys on
// 8xA100 with distributed inference (Table 10). Hidden-size buckets overlap
// heavily across models, which is why the paper measures near-identical
// reductions for all of them.
func LLMZoo(pagedKV bool, ranks int) []LLMConfig {
	return []LLMConfig{
		{Name: "c4ai_command_r_plus", ParamsB: 104, Layers: 64, HiddenBucket: "h12k", PagedKV: pagedKV, Ranks: ranks},
		{Name: "internlm2_5_7b_chat", ParamsB: 7.7, Layers: 32, HiddenBucket: "h4k", PagedKV: pagedKV, Ranks: ranks},
		{Name: "llama_3_70b_instruct", ParamsB: 70, Layers: 80, HiddenBucket: "h8k", PagedKV: pagedKV, Ranks: ranks},
		{Name: "mixtral_8x22b_instruct", ParamsB: 141, Layers: 56, HiddenBucket: "h8k", PagedKV: pagedKV, Ranks: ranks},
		{Name: "phi_3_medium_4k_instruct", ParamsB: 14, Layers: 40, HiddenBucket: "h6k", PagedKV: pagedKV, Ranks: ranks},
		{Name: "qwen_72b_instruct", ParamsB: 72, Layers: 80, HiddenBucket: "h8k", PagedKV: pagedKV, Ranks: ranks},
		{Name: "qwen15_110b_chat", ParamsB: 110, Layers: 80, HiddenBucket: "h8k", PagedKV: pagedKV, Ranks: ranks},
		{Name: "yi_15_34b", ParamsB: 34, Layers: 60, HiddenBucket: "h8k", PagedKV: pagedKV, Ranks: ranks},
		{Name: "zephyr_orpo_141b_a35b", ParamsB: 141, Layers: 56, HiddenBucket: "h8k", PagedKV: pagedKV, Ranks: ranks},
	}
}
