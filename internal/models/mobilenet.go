package models

// MobileNetV2 builds the small computer-vision model of Table 1
// (4.3M parameters, CIFAR10). Training runs forward, backward, and SGD
// phases; inference runs the forward pass only.
func MobileNetV2(train bool, batch int) *Graph {
	b := BatchBucket(batch)
	g := &Graph{
		Model:                  "MobileNetV2",
		Train:                  train,
		Batch:                  batch,
		WeightBytes:            scaled(17),  // 4.3M params * 4B
		ActivationBytesPerItem: scaled(50),  // inverted-residual feature maps
		OptimizerStateFactor:   1,           // SGD with momentum
		HeapCPU:                scaled(250), // dataloader + python runtime state
	}

	fwd := []Op{
		{Family: "conv2d", Variant: "stem_" + b, Phase: Forward, Count: 1, Weight: 2},
		{Family: "conv2d", Variant: "pw_" + b, Phase: Forward, Count: 17, Weight: 6},
		{Family: "dwconv", Variant: "k3_" + b, Phase: Forward, Count: 17, Weight: 5},
		{Family: "batchnorm", Variant: "c_all", Phase: Forward, Count: 35, Weight: 2},
		{Family: "relu6", Variant: "elt", Phase: Forward, Count: 35, Weight: 1},
		{Family: "residual_add", Variant: "elt", Phase: Forward, Count: 10, Weight: 0.5},
		{Family: "pool", Variant: "avg_global", Phase: Forward, Count: 1, Weight: 0.3},
		{Family: "gemm", Variant: "fc1280_" + b, Phase: Forward, Count: 1, Weight: 1.2},
		{Family: "softmax", Variant: "c10", Phase: Forward, Count: 1, Weight: 0.2},
	}
	g.Ops = append(g.Ops, fwd...)

	if train {
		g.Ops = append(g.Ops,
			Op{Family: "ce_loss", Variant: "c10", Phase: Forward, Count: 1, Weight: 0.2},
			Op{Family: "conv2d_bwd", Variant: "pw_" + b, Phase: Backward, Count: 18, Weight: 9},
			Op{Family: "dwconv_bwd", Variant: "k3_" + b, Phase: Backward, Count: 17, Weight: 7},
			Op{Family: "batchnorm", Variant: "c_all", Phase: Backward, Count: 35, Weight: 2.5},
			Op{Family: "relu6", Variant: "elt", Phase: Backward, Count: 35, Weight: 1},
			Op{Family: "gemm", Variant: "fc1280_" + b, Phase: Backward, Count: 2, Weight: 1.5},
			Op{Family: "sgd", Variant: "momentum", Phase: Optimizer, Count: 4, Weight: 1},
		)
	}
	return g
}
