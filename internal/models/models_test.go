package models

import (
	"strings"
	"testing"

	"negativaml/internal/gpuarch"
)

func TestKernelName(t *testing.T) {
	if got := KernelName("conv2d", "pw_bs", Forward); got != "conv2d_pw_bs_fwd" {
		t.Errorf("KernelName = %q", got)
	}
	if got := KernelName("sgd", "momentum", Optimizer); got != "sgd_momentum_opt" {
		t.Errorf("KernelName = %q", got)
	}
}

func TestBatchBucket(t *testing.T) {
	for b, want := range map[int]string{1: "bs", 16: "bs", 32: "bs", 33: "bl", 128: "bl"} {
		if got := BatchBucket(b); got != want {
			t.Errorf("BatchBucket(%d) = %q, want %q", b, got, want)
		}
	}
}

func TestMobileNetTrainVsInference(t *testing.T) {
	train := MobileNetV2(true, 16)
	inf := MobileNetV2(false, 1)
	if !train.Train || inf.Train {
		t.Fatal("Train flags wrong")
	}
	if len(train.Ops) <= len(inf.Ops) {
		t.Error("training graph must add backward/optimizer ops")
	}
	// Batch 16 and batch 1 fall in the same bucket: forward kernels shared.
	trainK := kernelSet(train, gpuarch.SM75, 1)
	infK := kernelSet(inf, gpuarch.SM75, 1)
	shared := 0
	for k := range infK {
		if trainK[k] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("train/inference should share forward kernels (same batch bucket)")
	}
	if len(trainK) <= len(infK) {
		t.Error("training should use strictly more kernels")
	}
}

func TestTransformerBatchBucketsDiffer(t *testing.T) {
	train := Transformer(true, 128) // large bucket
	inf := Transformer(false, 32)   // small bucket
	trainK := kernelSet(train, gpuarch.SM75, 1)
	infK := kernelSet(inf, gpuarch.SM75, 1)
	sharedBucketed := 0
	for k := range infK {
		if trainK[k] && strings.Contains(k, "_bl_") {
			sharedBucketed++
		}
	}
	if sharedBucketed != 0 {
		t.Error("batch-128 and batch-32 should not share bucketed kernels")
	}
}

func kernelSet(g *Graph, arch gpuarch.SM, ranks int) map[string]bool {
	set := make(map[string]bool)
	for _, k := range UsedKernels(g, arch, ranks) {
		set[k] = true
	}
	return set
}

func TestLLMArchTuning(t *testing.T) {
	cfg := Llama2(true, 1)
	g := LLM(cfg)
	t4 := UsedKernels(g, gpuarch.SM75, 1)
	h100 := UsedKernels(g, gpuarch.SM90, 1)
	if len(h100) <= len(t4) {
		t.Errorf("H100 should use more kernels (autotune + arch-tuned): %d vs %d", len(h100), len(t4))
	}
	foundSM90, foundCand := false, false
	for _, k := range h100 {
		if strings.Contains(k, "_sm90") {
			foundSM90 = true
		}
		if strings.Contains(k, "_cand") {
			foundCand = true
		}
	}
	if !foundSM90 || !foundCand {
		t.Errorf("H100 kernels should include arch-tuned and autotune candidates: %v %v", foundSM90, foundCand)
	}
}

func TestLLMDistributedCommKernels(t *testing.T) {
	g := LLM(Llama2(true, 8))
	k1 := UsedKernels(g, gpuarch.SM80, 1)
	k8 := UsedKernels(g, gpuarch.SM80, 8)
	if len(k8) <= len(k1) {
		t.Errorf("8-rank run should use more kernels: %d vs %d", len(k8), len(k1))
	}
	found := 0
	for _, k := range k8 {
		if strings.HasPrefix(k, "allreduce_") && strings.Contains(k, "_r7") {
			found++
		}
	}
	if found == 0 {
		t.Error("rank-7 allreduce kernel missing")
	}
	// Single-GPU llama has no comm ops at all.
	single := LLM(Llama2(true, 1))
	for _, f := range single.Families() {
		if f == "allreduce" || f == "allgather" {
			t.Error("single-GPU graph should not have comm families")
		}
	}
}

func TestPagedVsPlainAttention(t *testing.T) {
	vllm := LLM(Llama2(true, 1))
	hf := LLM(Llama2(false, 1))
	hasFam := func(g *Graph, fam string) bool {
		for _, f := range g.Families() {
			if f == fam {
				return true
			}
		}
		return false
	}
	if !hasFam(vllm, "paged_attention") || hasFam(vllm, "attention") {
		t.Error("vLLM config should use paged_attention only")
	}
	if hasFam(hf, "paged_attention") || !hasFam(hf, "attention") {
		t.Error("HF config should use plain attention only")
	}
}

func TestUniverseKernelsCoversUsage(t *testing.T) {
	graphs := []*Graph{
		MobileNetV2(true, 16), MobileNetV2(false, 1),
		Transformer(true, 128), Transformer(false, 32),
	}
	uni := UniverseKernels(graphs, gpuarch.SM75, 1)
	all := make(map[string]bool)
	for _, names := range uni {
		for _, n := range names {
			all[n] = true
		}
	}
	for _, g := range graphs {
		for _, k := range UsedKernels(g, gpuarch.SM75, 1) {
			if !all[k] {
				t.Errorf("universe missing kernel %q used by %s/%s", k, g.Model, g.Mode())
			}
		}
	}
}

func TestUniverseCoversRanksAndAutotune(t *testing.T) {
	g := LLM(Llama2(true, 8))
	uni := UniverseKernels([]*Graph{g}, gpuarch.SM80, 8)
	all := make(map[string]bool)
	for _, names := range uni {
		for _, n := range names {
			all[n] = true
		}
	}
	for _, k := range UsedKernels(g, gpuarch.SM80, 8) {
		if !all[k] {
			t.Errorf("universe missing %q", k)
		}
	}
}

func TestGraphAccessors(t *testing.T) {
	g := MobileNetV2(true, 16)
	if g.TotalWeight() <= 0 {
		t.Error("TotalWeight must be positive")
	}
	if g.LaunchesPerStep() <= 0 {
		t.Error("LaunchesPerStep must be positive")
	}
	if g.Mode() != "Train" {
		t.Errorf("Mode = %q", g.Mode())
	}
	if MobileNetV2(false, 1).Mode() != "Inference" {
		t.Error("inference Mode wrong")
	}
	fams := g.Families()
	if len(fams) < 5 {
		t.Errorf("families = %v", fams)
	}
	seen := map[string]bool{}
	for _, f := range fams {
		if seen[f] {
			t.Errorf("duplicate family %q", f)
		}
		seen[f] = true
	}
}

func TestLLMZoo(t *testing.T) {
	zoo := LLMZoo(true, 8)
	if len(zoo) != 9 {
		t.Fatalf("zoo size = %d, want 9", len(zoo))
	}
	for _, cfg := range zoo {
		g := LLM(cfg)
		if g.WeightBytes <= 0 || len(g.Ops) == 0 {
			t.Errorf("%s: invalid graph", cfg.Name)
		}
		if !cfg.PagedKV || cfg.Ranks != 8 {
			t.Errorf("%s: config not propagated", cfg.Name)
		}
	}
	// Models sharing a hidden bucket share attention kernels.
	a := UsedKernels(LLM(zoo[2]), gpuarch.SM80, 8) // llama3 h8k
	b := UsedKernels(LLM(zoo[5]), gpuarch.SM80, 8) // qwen72 h8k
	if len(a) != len(b) {
		t.Errorf("same-bucket zoo models should use same kernel count: %d vs %d", len(a), len(b))
	}
}

func TestPerRankKernelNames(t *testing.T) {
	op := Op{Family: "allreduce", Variant: "ring_tp8", Phase: Comm, PerRank: true}
	k0 := op.KernelFor(gpuarch.SM80, 0)
	k7 := op.KernelFor(gpuarch.SM80, 7)
	if k0 == k7 {
		t.Error("per-rank kernels must differ by rank")
	}
	if !strings.HasSuffix(k0, "_r0") || !strings.HasSuffix(k7, "_r7") {
		t.Errorf("rank suffixes wrong: %q %q", k0, k7)
	}
}

func TestAutotuneBelowSM80Empty(t *testing.T) {
	op := Op{Family: "gemm", Variant: "llm_qkv_h4k", Phase: Forward, ArchTuned: true, Autotune: 4}
	if got := op.AutotuneKernels(gpuarch.SM75, 0); got != nil {
		t.Errorf("no autotune below SM80, got %v", got)
	}
	if got := op.AutotuneKernels(gpuarch.SM90, 0); len(got) != 4 {
		t.Errorf("autotune on SM90 = %d candidates, want 4", len(got))
	}
	// Arch-tuned base name on SM90.
	if k := op.KernelFor(gpuarch.SM90, 0); !strings.Contains(k, "_sm90") {
		t.Errorf("SM90 kernel %q should be arch-suffixed", k)
	}
	if k := op.KernelFor(gpuarch.SM75, 0); strings.Contains(k, "_sm") {
		t.Errorf("SM75 kernel %q should not be arch-suffixed", k)
	}
}
