package models

import (
	"fmt"
	"time"

	"negativaml/internal/gpuarch"
)

// Phase distinguishes the step phases an op can run in.
type Phase int

// Op phases.
const (
	Forward Phase = iota
	Backward
	Optimizer
	Comm
)

// Suffix returns the kernel-name suffix for the phase.
func (p Phase) Suffix() string {
	switch p {
	case Backward:
		return "bwd"
	case Optimizer:
		return "opt"
	case Comm:
		return "comm"
	}
	return "fwd"
}

// KernelName derives the canonical kernel name for a (family, variant,
// phase) triple. Kernel names are shape-specialized, which is why different
// workloads share few kernels even when they share operator families
// (paper Table 4: kernel Jaccard similarity is low while CPU-function
// similarity is high).
func KernelName(family, variant string, phase Phase) string {
	return family + "_" + variant + "_" + phase.Suffix()
}

// BatchBucket maps a batch size to the shape bucket compilers specialize
// for. Batches up to 32 share "small-batch" kernels; larger batches use the
// large-batch specializations. This reproduces the paper's observation that
// MobileNetV2 training (batch 16) and inference (batch 1) share far more
// kernels than Transformer training (batch 128) does with its inference
// (batch 32).
func BatchBucket(batch int) string {
	if batch <= 32 {
		return "bs"
	}
	return "bl"
}

// Op is one operator execution per step.
type Op struct {
	// Family is the kernel family (conv2d, matmul, attention, …).
	Family string
	// Variant is the shape bucket within the family.
	Variant string
	// Phase is the step phase the op runs in.
	Phase Phase
	// Count is how many times the op's kernel launches per step.
	Count int
	// Weight is the op's share of the per-item compute cost; the executor
	// normalizes weights across the graph.
	Weight float64
	// PerRank marks collective-communication ops whose kernel is
	// rank-specialized under distributed inference.
	PerRank bool
	// ArchTuned marks ops that use architecture-specialized kernels on
	// SM80+ devices (Ampere/Hopper-tuned attention and GEMM paths).
	ArchTuned bool
	// Autotune is the number of candidate kernels the framework probes via
	// cuModuleGetFunction on SM80+ before picking one (cuBLAS/Inductor-style
	// autotuning). Candidates are resolved once but mostly never launched.
	Autotune int
}

// Kernel returns the base kernel name for the op.
func (o *Op) Kernel() string { return KernelName(o.Family, o.Variant, o.Phase) }

// KernelFor returns the kernel the op launches on the given architecture
// and rank. Rank is ignored unless the op is PerRank.
func (o *Op) KernelFor(arch gpuarch.SM, rank int) string {
	name := o.Kernel()
	if o.ArchTuned && arch >= gpuarch.SM80 {
		name = fmt.Sprintf("%s_sm%d", name, uint32(arch))
	}
	if o.PerRank {
		name = fmt.Sprintf("%s_r%d", name, rank)
	}
	return name
}

// AutotuneKernels returns the candidate kernels probed on the given
// architecture (empty below SM80 or when the op does not autotune).
func (o *Op) AutotuneKernels(arch gpuarch.SM, rank int) []string {
	if o.Autotune <= 0 || arch < gpuarch.SM80 {
		return nil
	}
	base := o.KernelFor(arch, rank)
	out := make([]string, 0, o.Autotune)
	for i := 0; i < o.Autotune; i++ {
		out = append(out, fmt.Sprintf("%s_cand%d", base, i))
	}
	return out
}

// Graph is a model workload: the ops executed each step plus its resource
// profile. Sizes use the repository scale (1 paper-MB = 1 simulated-KB).
type Graph struct {
	// Model is the model name ("MobileNetV2", "Transformer", "Llama2", …).
	Model string
	// Train is true for training graphs (forward+backward+optimizer).
	Train bool
	// Batch is the per-step batch size.
	Batch int
	// Ops are the operator executions of one step.
	Ops []Op
	// WeightBytes is the parameter size.
	WeightBytes int64
	// ActivationBytesPerItem is the per-batch-item activation working set.
	ActivationBytesPerItem int64
	// OptimizerStateFactor multiplies WeightBytes for optimizer state when
	// training (1 for SGD with momentum, 2 for Adam).
	OptimizerStateFactor float64
	// HeapCPU is the host-side working set of the model + runtime.
	HeapCPU int64
}

// Families returns the distinct op families in graph order.
func (g *Graph) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range g.Ops {
		f := g.Ops[i].Family
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// TotalWeight sums op weights for compute normalization.
func (g *Graph) TotalWeight() float64 {
	var w float64
	for i := range g.Ops {
		w += g.Ops[i].Weight
	}
	return w
}

// LaunchesPerStep returns the host-side kernel launches of one step.
func (g *Graph) LaunchesPerStep() int {
	n := 0
	for i := range g.Ops {
		n += g.Ops[i].Count
	}
	return n
}

// Mode returns "Train" or "Inference" — the paper's Operation column.
func (g *Graph) Mode() string {
	if g.Train {
		return "Train"
	}
	return "Inference"
}

// scaled converts paper megabytes to simulated bytes (1 MB -> 1 KB).
func scaled(mb float64) int64 { return int64(mb * 1024) }

// ComputeScale is used by the executor: per-item virtual compute time for
// one unit of op weight.
type ComputeScale struct {
	PerItem time.Duration
}
