package models

// Transformer builds the medium NLP model of Table 1 (65M parameters, the
// original encoder-decoder architecture, machine translation).
func Transformer(train bool, batch int) *Graph {
	b := BatchBucket(batch)
	g := &Graph{
		Model:                  "Transformer",
		Train:                  train,
		Batch:                  batch,
		WeightBytes:            scaled(260), // 65M params * 4B
		ActivationBytesPerItem: scaled(20),  // seq x d_model activations (short eval sequences)
		OptimizerStateFactor:   2,           // Adam (m + v)
		HeapCPU:                scaled(400), // tokenizer, vocab, batching buffers
	}
	if train {
		// Training batches run full-length sequences.
		g.ActivationBytesPerItem = scaled(66)
	}

	fwd := []Op{
		{Family: "embedding", Variant: "vocab32k", Phase: Forward, Count: 2, Weight: 0.8},
		{Family: "attention", Variant: "mha_d512_" + b, Phase: Forward, Count: 18, Weight: 8},
		{Family: "gemm_batched", Variant: "attn_d512_" + b, Phase: Forward, Count: 36, Weight: 3},
		{Family: "gemm", Variant: "qkv_d512_" + b, Phase: Forward, Count: 36, Weight: 7},
		{Family: "gemm", Variant: "ffn_d2048_" + b, Phase: Forward, Count: 24, Weight: 6},
		{Family: "layernorm", Variant: "d512", Phase: Forward, Count: 24, Weight: 1.2},
		{Family: "softmax", Variant: "attn_" + b, Phase: Forward, Count: 18, Weight: 1},
		{Family: "gelu", Variant: "elt", Phase: Forward, Count: 12, Weight: 0.8},
		{Family: "residual_add", Variant: "elt", Phase: Forward, Count: 24, Weight: 0.5},
		{Family: "dropout", Variant: "elt", Phase: Forward, Count: 12, Weight: 0.4},
	}
	g.Ops = append(g.Ops, fwd...)

	if train {
		g.Ops = append(g.Ops,
			Op{Family: "ce_loss", Variant: "vocab32k", Phase: Forward, Count: 1, Weight: 0.5},
			Op{Family: "attention", Variant: "mha_d512_" + b, Phase: Backward, Count: 18, Weight: 11},
			Op{Family: "gemm", Variant: "qkv_d512_" + b, Phase: Backward, Count: 36, Weight: 9},
			Op{Family: "gemm", Variant: "ffn_d2048_" + b, Phase: Backward, Count: 24, Weight: 8},
			Op{Family: "layernorm", Variant: "d512", Phase: Backward, Count: 24, Weight: 1.5},
			Op{Family: "embedding", Variant: "vocab32k", Phase: Backward, Count: 2, Weight: 0.8},
			Op{Family: "adam", Variant: "fused", Phase: Optimizer, Count: 6, Weight: 1.5},
		)
	}
	return g
}
