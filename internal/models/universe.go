package models

import (
	"sort"

	"negativaml/internal/gpuarch"
)

// UniverseKernels enumerates every kernel name the given workload graphs
// could resolve on one architecture, per family, including rank-specialized
// collective kernels up to maxRanks and autotune candidates. The framework
// generator plants exactly these names (plus bloat) into its libraries, so
// workloads always find their kernels while the rest is measurable bloat.
func UniverseKernels(graphs []*Graph, arch gpuarch.SM, maxRanks int) map[string][]string {
	if maxRanks < 1 {
		maxRanks = 1
	}
	sets := make(map[string]map[string]bool)
	add := func(family, name string) {
		if sets[family] == nil {
			sets[family] = make(map[string]bool)
		}
		sets[family][name] = true
	}
	for _, g := range graphs {
		for i := range g.Ops {
			op := &g.Ops[i]
			ranks := 1
			if op.PerRank {
				ranks = maxRanks
			}
			for r := 0; r < ranks; r++ {
				add(op.Family, op.KernelFor(arch, r))
				for _, cand := range op.AutotuneKernels(arch, r) {
					add(op.Family, cand)
				}
			}
		}
	}
	out := make(map[string][]string, len(sets))
	for family, set := range sets {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		out[family] = names
	}
	return out
}

// UsedKernels returns the kernels one workload resolves on one device setup
// (ground truth for generator calibration tests; the debloater itself never
// sees this — it must rediscover usage by profiling).
func UsedKernels(g *Graph, arch gpuarch.SM, ranks int) []string {
	set := make(map[string]bool)
	if ranks < 1 {
		ranks = 1
	}
	for i := range g.Ops {
		op := &g.Ops[i]
		n := 1
		if op.PerRank {
			n = ranks
		}
		for r := 0; r < n; r++ {
			set[op.KernelFor(arch, r)] = true
			for _, cand := range op.AutotuneKernels(arch, r) {
				set[cand] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
