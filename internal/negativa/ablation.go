package negativa

import (
	"fmt"

	"negativaml/internal/cubin"
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
)

// This file implements the ablation DESIGN.md calls out for the locator's
// central design choice (§3.2): retaining *whole cubins* rather than exact
// kernels. The paper keeps the cubin because a kernel launched from device
// code (a GPU-launching kernel) never passes through cuModuleGetFunction,
// so a locator that kept only detected kernels would strip the children and
// break the workload. LocateGPUExact implements that naive strategy so the
// ablation experiment (and tests) can demonstrate the failure.

// ExactKernelLocation is the naive locator's output: byte ranges of the
// detected kernels only.
type ExactKernelLocation struct {
	// Keep are absolute file ranges of the detected kernels' code.
	Keep []fatbin.Range
	// KeptKernels / TotalKernels count kernels in matching-arch cubins.
	KeptKernels  int
	TotalKernels int
}

// LocateGPUExact is the ablated locator: instead of retaining whole
// elements, it retains only the code ranges of kernels the detector saw,
// zeroing everything else inside matching-arch cubins — including the
// device-only kernels their call graphs need. Provided for the ablation;
// the real pipeline never uses it.
func LocateGPUExact(lib *elfx.Library, usedKernels []string, archs []gpuarch.SM) (*ExactKernelLocation, error) {
	fb, has, err := lib.Fatbin()
	if err != nil {
		return nil, err
	}
	loc := &ExactKernelLocation{}
	if !has {
		return loc, nil
	}
	secRange, _ := lib.FatbinRange()
	used := make(map[string]bool, len(usedKernels))
	for _, k := range usedKernels {
		used[k] = true
	}
	archSet := make(map[gpuarch.SM]bool, len(archs))
	for _, a := range archs {
		archSet[a] = true
	}
	for _, e := range fb.Elements() {
		if e.Kind != fatbin.KindCubin || !archSet[e.Arch] {
			continue
		}
		cb, err := cubin.Parse(e.Payload)
		if err != nil {
			return nil, fmt.Errorf("negativa: %s element %d: %w", lib.Name, e.Index, err)
		}
		// Header, kernel table and string table are always kept so the
		// cubin still parses; only unused kernel code is dropped.
		payloadStart := secRange.Start + e.PayloadRange.Start
		codeBase, err := cubinCodeOffset(e.Payload)
		if err != nil {
			return nil, err
		}
		loc.Keep = append(loc.Keep, fatbin.Range{
			Start: payloadStart,
			End:   payloadStart + codeBase,
		})
		codeCursor := int64(0)
		for _, k := range cb.Kernels {
			size := int64(len(k.Code))
			loc.TotalKernels++
			if used[k.Name] {
				loc.KeptKernels++
				loc.Keep = append(loc.Keep, fatbin.Range{
					Start: payloadStart + codeBase + codeCursor,
					End:   payloadStart + codeBase + codeCursor + size,
				})
			}
			codeCursor += size
		}
	}
	return loc, nil
}

// cubinCodeOffset reads the code-blob offset from a cubin header (layout in
// internal/cubin).
func cubinCodeOffset(payload []byte) (int64, error) {
	if !cubin.IsCubin(payload) {
		return 0, fmt.Errorf("negativa: not a cubin payload")
	}
	// codeOff is the u32 at byte 20 of the header.
	off := int64(uint32(payload[20]) | uint32(payload[21])<<8 | uint32(payload[22])<<16 | uint32(payload[23])<<24)
	if off < 0 || off > int64(len(payload)) {
		return 0, fmt.Errorf("negativa: implausible cubin code offset %d", off)
	}
	return off, nil
}

// CompactExact applies the naive exact-kernel compaction: inside each
// matching-arch cubin payload, zero all kernel code not covered by keep.
// CPU compaction is unchanged.
func CompactExact(lib *elfx.Library, cpu *CPULocation, exact *ExactKernelLocation, archs []gpuarch.SM) ([]byte, error) {
	out := make([]byte, len(lib.Data))
	copy(out, lib.Data)
	if text := lib.Section(".text"); text != nil && cpu != nil {
		elfx.ZeroOutside(out, text.Range, cpu.Keep)
	}
	fb, has, err := lib.Fatbin()
	if err != nil {
		return nil, err
	}
	if !has {
		return out, nil
	}
	secRange, _ := lib.FatbinRange()
	archSet := make(map[gpuarch.SM]bool, len(archs))
	for _, a := range archs {
		archSet[a] = true
	}
	for _, e := range fb.Elements() {
		abs := fatbin.Range{
			Start: secRange.Start + e.PayloadRange.Start,
			End:   secRange.Start + e.PayloadRange.End,
		}
		if e.Kind != fatbin.KindCubin || !archSet[e.Arch] {
			elfx.ZeroRange(out, abs)
			continue
		}
		elfx.ZeroOutside(out, abs, exact.Keep)
	}
	return out, nil
}
