package negativa

import (
	"testing"

	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/models"
)

// The locator's central design choice: retaining whole cubins keeps the
// GPU-launching kernels the detector cannot see. The ablated exact-kernel
// locator removes them — and the workload must trap.
func TestAblationExactKernelRemovalBreaksWorkload(t *testing.T) {
	w := mobilenetTrain(t)
	profile, err := DetectUsage(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	archs := []gpuarch.SM{gpuarch.SM75}

	replaced := make(map[string][]byte)
	removedSomething := false
	for _, name := range w.Install.LibNames {
		lib := w.Install.Library(name)
		cpuLoc := LocateCPU(lib, profile.UsedFuncs[name])
		exact, err := LocateGPUExact(lib, profile.UsedKernels[name], archs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if exact.KeptKernels < exact.TotalKernels && exact.KeptKernels > 0 {
			removedSomething = true
		}
		out, err := CompactExact(lib, cpuLoc, exact, archs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		replaced[name] = out
	}
	if !removedSomething {
		t.Fatal("ablation removed nothing — test is vacuous")
	}
	clone, err := w.Install.CloneWithLibs(replaced)
	if err != nil {
		t.Fatal(err)
	}
	w2 := w
	w2.Install = clone
	if _, err := mlruntime.Run(w2, mlruntime.Options{MaxSteps: 3}); err == nil {
		t.Fatal("exact-kernel debloating should break the workload (device-side children removed)")
	}

	// Sanity: the real pipeline on the same profile verifies fine — this is
	// exactly the reliability gap the paper's design closes.
	res, err := Debloat(w, Options{MaxSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("whole-cubin retention must keep the workload runnable")
	}
}

// The ablated locator keeps strictly fewer bytes — it is "better" on the
// size metric and wrong on correctness, which is the trade-off the paper's
// approximate location deliberately makes.
func TestAblationKeepsFewerBytes(t *testing.T) {
	w := mobilenetTrain(t)
	profile, err := DetectUsage(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	lib := w.Install.Library("libtorch_cuda.so")
	archs := []gpuarch.SM{gpuarch.SM75}

	whole, err := LocateGPU(lib, profile.UsedKernels[lib.Name], archs)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := LocateGPUExact(lib, profile.UsedKernels[lib.Name], archs)
	if err != nil {
		t.Fatal(err)
	}
	var exactBytes int64
	for _, r := range exact.Keep {
		exactBytes += r.Len()
	}
	if exactBytes >= whole.KeptBytes {
		t.Errorf("exact locator should keep fewer bytes: %d vs %d", exactBytes, whole.KeptBytes)
	}
	if exact.KeptKernels == 0 || exact.KeptKernels >= exact.TotalKernels {
		t.Errorf("implausible kernel split: %d/%d", exact.KeptKernels, exact.TotalKernels)
	}
}

func TestUsedBloatAnalysis(t *testing.T) {
	w := mobilenetTrain(t)
	rep, err := AnalyzeUsedBloat(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InitOnlyCount() == 0 {
		t.Fatal("init-only functions expected (framework init calls)")
	}
	if rep.SteadyStateCount() == 0 {
		t.Fatal("steady-state functions expected (op dispatch)")
	}
	// Init-only and steady-state must be disjoint per library.
	for lib, initFns := range rep.InitOnly {
		steady := map[string]bool{}
		for _, f := range rep.SteadyState[lib] {
			steady[f] = true
		}
		for _, f := range initFns {
			if steady[f] {
				t.Errorf("%s: %s in both classes", lib, f)
			}
		}
	}
	if f := rep.InitOnlyFraction(); f <= 0 || f >= 1 {
		t.Errorf("init-only fraction = %v", f)
	}
}

// The paper's §5 hypothesis: TensorFlow carries far more used bloat than
// PyTorch — its init executes a large share of functions that the steady
// state never touches.
func TestUsedBloatTensorFlowVsPyTorch(t *testing.T) {
	tfInstall, err := mlframework.Generate(mlframework.Config{Framework: mlframework.TensorFlow, TailLibs: 15})
	if err != nil {
		t.Fatal(err)
	}
	tfW := mlruntime.Workload{
		Name:           "TensorFlow/Train/MobileNetV2",
		Install:        tfInstall,
		Graph:          models.MobileNetV2(true, 16),
		Devices:        []gpuarch.Device{gpuarch.T4},
		Data:           mobilenetTrain(t).Data,
		Epochs:         3,
		PerItemCompute: mobilenetTrain(t).PerItemCompute,
	}
	tfRep, err := AnalyzeUsedBloat(tfW, 5)
	if err != nil {
		t.Fatal(err)
	}
	ptRep, err := AnalyzeUsedBloat(mobilenetTrain(t), 5)
	if err != nil {
		t.Fatal(err)
	}
	if tfRep.InitOnlyCount() <= 3*ptRep.InitOnlyCount() {
		t.Errorf("TF used-bloat candidates (%d) should dwarf PyTorch's (%d)",
			tfRep.InitOnlyCount(), ptRep.InitOnlyCount())
	}
}

// Debloating is idempotent: running the pipeline on an already-debloated
// install removes nothing further and still verifies.
func TestDebloatIdempotent(t *testing.T) {
	w := mobilenetTrain(t)
	first, err := Debloat(w, Options{MaxSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	clone, err := w.Install.CloneWithLibs(first.DebloatedLibs())
	if err != nil {
		t.Fatal(err)
	}
	w2 := w
	w2.Install = clone
	second, err := Debloat(w2, Options{MaxSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Verified {
		t.Fatal("second pass must verify")
	}
	a1, a2 := first.Aggregate(), second.Aggregate()
	if a2.FileEffective != a1.FileEffectiveAfter {
		t.Errorf("second pass input (%d) should equal first pass output (%d)",
			a2.FileEffective, a1.FileEffectiveAfter)
	}
	if a2.FileEffectiveAfter != a2.FileEffective {
		t.Errorf("second pass removed %d bytes; debloating must be idempotent",
			a2.FileEffective-a2.FileEffectiveAfter)
	}
	if a2.FuncsKept != a1.FuncsKept || a2.ElemsKept != a1.ElemsKept {
		t.Errorf("kept sets changed: funcs %d->%d elems %d->%d",
			a1.FuncsKept, a2.FuncsKept, a1.ElemsKept, a2.ElemsKept)
	}
}
