package negativa

import (
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
)

// Compact derives the debloated library as a SparseImage: unused .text
// function ranges and the payloads of removed fatbin elements form the
// zeroed-range set; no library bytes are copied or scanned. ELF headers,
// section tables, symbol tables, fatbin region/element headers, and every
// retained range stay byte-identical to the original, so file offsets and
// memory addresses stay valid (§3.2, Compaction; the mechanism is
// Negativa's, reused by Negativa-ML). Materialize() reproduces the eager
// compactor's output byte for byte.
func Compact(lib *elfx.Library, cpu *CPULocation, gpu *GPULocation) *SparseImage {
	var zeroed []fatbin.Range
	if text := lib.Section(".text"); text != nil && cpu != nil {
		zeroed = append(zeroed, elfx.ComplementWithin(text.Range, cpu.Keep)...)
	}
	if gpu != nil {
		for _, d := range gpu.Decisions {
			if d.Reason != Kept {
				zeroed = append(zeroed, d.PayloadRange)
			}
		}
	}
	return NewSparseImage(lib, zeroed)
}
