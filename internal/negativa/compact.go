package negativa

import (
	"negativaml/internal/elfx"
)

// Compact produces the debloated library bytes: unused .text function
// ranges and the payloads of removed fatbin elements are zeroed in place.
// ELF headers, section tables, symbol tables, fatbin region/element headers,
// and every retained range are byte-identical to the original, so file
// offsets and memory addresses stay valid (§3.2, Compaction; the mechanism
// is Negativa's, reused by Negativa-ML).
func Compact(lib *elfx.Library, cpu *CPULocation, gpu *GPULocation) []byte {
	out := make([]byte, len(lib.Data))
	copy(out, lib.Data)

	if text := lib.Section(".text"); text != nil && cpu != nil {
		elfx.ZeroOutside(out, text.Range, cpu.Keep)
	}
	if gpu != nil {
		for _, d := range gpu.Decisions {
			if d.Reason != Kept {
				elfx.ZeroRange(out, d.PayloadRange)
			}
		}
	}
	return out
}
