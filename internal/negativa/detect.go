package negativa

import (
	"sort"
	"time"

	"negativaml/internal/cudasim"
	"negativaml/internal/mlruntime"
	"negativaml/internal/trace"
)

// Profile is the detection phase's output: what one workload actually used.
type Profile struct {
	// Workload is the profiled workload's name.
	Workload string
	// UsedKernels maps library name to the sorted CPU-launching kernel
	// names the detector recorded.
	UsedKernels map[string][]string
	// UsedFuncs maps library name to the sorted CPU functions the profiler
	// observed.
	UsedFuncs map[string][]string
	// RunResult is the profiled run's result (its Digest is the reference
	// output for verification; its ExecTime includes detector overhead).
	RunResult *mlruntime.Result
}

// DetectUsage runs the workload once with the kernel detector and the CPU
// profiler attached and returns its usage profile. maxSteps caps the run
// (0 = full dataset); kernel and function coverage saturates within the
// first steps because ML workloads iterate the same graph.
func DetectUsage(w mlruntime.Workload, maxSteps int) (*Profile, error) {
	var kd *trace.KernelDetector
	usedFuncs := make(map[string]map[string]bool)

	res, err := mlruntime.Run(w, mlruntime.Options{
		MaxSteps: maxSteps,
		DriverSetup: func(d *cudasim.Driver) {
			kd = trace.AttachDetector(d)
		},
		FuncHook: func(lib, fn string) {
			set := usedFuncs[lib]
			if set == nil {
				set = make(map[string]bool)
				usedFuncs[lib] = set
			}
			set[fn] = true
		},
	})
	if err != nil {
		return nil, err
	}

	p := &Profile{
		Workload:    w.Name,
		UsedKernels: kd.AllUsed(),
		UsedFuncs:   make(map[string][]string, len(usedFuncs)),
		RunResult:   res,
	}
	for lib, set := range usedFuncs {
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		p.UsedFuncs[lib] = names
	}
	return p, nil
}

// DetectionOverhead measures the §4.6 comparison on one workload: the
// virtual run time bare, with the kernel detector, and with the NSys-like
// full tracer.
func DetectionOverhead(w mlruntime.Workload, maxSteps int) (base, detector, nsys time.Duration, err error) {
	r, err := mlruntime.Run(w, mlruntime.Options{MaxSteps: maxSteps})
	if err != nil {
		return 0, 0, 0, err
	}
	base = r.ExecTime

	r, err = mlruntime.Run(w, mlruntime.Options{
		MaxSteps:    maxSteps,
		DriverSetup: func(d *cudasim.Driver) { trace.AttachDetector(d) },
	})
	if err != nil {
		return 0, 0, 0, err
	}
	detector = r.ExecTime

	r, err = mlruntime.Run(w, mlruntime.Options{
		MaxSteps:    maxSteps,
		DriverSetup: func(d *cudasim.Driver) { trace.AttachNSys(d) },
	})
	if err != nil {
		return 0, 0, 0, err
	}
	nsys = r.ExecTime
	return base, detector, nsys, nil
}
