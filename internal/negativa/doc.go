// Package negativa implements Negativa-ML, the paper's debloating tool for
// ML shared libraries (§3). The pipeline has three phases plus verification:
//
//   - Detection: run the target workload once with the CUPTI kernel detector
//     (a hook on cuModuleGetFunction that records each CPU-launching
//     kernel's name exactly once) and a CPU-function profiler.
//   - Location: map used kernels to the cubins containing them, cubins to
//     fatbin elements, and elements to file ranges; retain an element only
//     if its compute-capability matches the device architecture and it
//     contains a used CPU-launching kernel (GPU-launching kernels ride
//     along because they share the cubin). Map used CPU functions to their
//     .text file ranges through the symbol table.
//   - Compaction: zero every unretained file range, preserving ELF and
//     fatbin structure so addresses stay valid.
//   - Verification: re-run the workload on the debloated libraries and
//     compare output digests.
package negativa
