package negativa

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"negativaml/internal/cudasim"
	"negativaml/internal/dataset"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/models"
	"negativaml/internal/plan"
)

// goldenWorkload builds one representative workload per framework fixture.
func goldenWorkload(t *testing.T, fw string) mlruntime.Workload {
	t.Helper()
	in, err := mlframework.Generate(mlframework.Config{Framework: fw, TailLibs: 8})
	if err != nil {
		t.Fatalf("%s: %v", fw, err)
	}
	var graph *models.Graph
	var data dataset.Dataset
	switch fw {
	case mlframework.PyTorch:
		graph, data = models.MobileNetV2(true, 16), dataset.CIFAR10
	case mlframework.TensorFlow:
		graph, data = models.MobileNetV2(false, 8), dataset.CIFAR10
	case mlframework.VLLM:
		graph, data = models.LLM(models.Llama2(true, 1)), dataset.ManualInput
	default:
		graph, data = models.LLM(models.Llama2(false, 1)), dataset.ManualInput
	}
	return mlruntime.Workload{
		Name:           fw + "/golden",
		Install:        in,
		Graph:          graph,
		Devices:        []gpuarch.Device{gpuarch.T4},
		Mode:           cudasim.EagerLoading,
		Data:           data,
		Epochs:         1,
		PerItemCompute: 100 * time.Microsecond,
	}
}

// equalResults asserts the staged planner's Result is byte-identical to
// the monolith's: every report field, every materialized library image,
// the virtual timings, and the verification outcome.
func equalResults(t *testing.T, label string, mono, staged *Result) {
	t.Helper()
	if mono.Workload != staged.Workload {
		t.Fatalf("%s: workload %q vs %q", label, mono.Workload, staged.Workload)
	}
	if !reflect.DeepEqual(mono.Profile, staged.Profile) {
		t.Fatalf("%s: profiles diverge", label)
	}
	if mono.DetectTime != staged.DetectTime || mono.AnalysisTime != staged.AnalysisTime || mono.EndToEnd != staged.EndToEnd {
		t.Fatalf("%s: timings diverge: detect %v/%v analysis %v/%v end-to-end %v/%v", label,
			mono.DetectTime, staged.DetectTime, mono.AnalysisTime, staged.AnalysisTime, mono.EndToEnd, staged.EndToEnd)
	}
	if len(mono.Libs) != len(staged.Libs) {
		t.Fatalf("%s: %d vs %d library reports", label, len(mono.Libs), len(staged.Libs))
	}
	for i := range mono.Libs {
		m, s := mono.Libs[i], staged.Libs[i]
		// Compare every analytic field; Sparse itself is compared through
		// its materialization below.
		mCopy, sCopy := *m, *s
		mCopy.Sparse, sCopy.Sparse = nil, nil
		if !reflect.DeepEqual(mCopy, sCopy) {
			t.Fatalf("%s: report %s diverges:\nmono:   %+v\nstaged: %+v", label, m.Name, mCopy, sCopy)
		}
		if !bytes.Equal(m.Debloated(), s.Debloated()) {
			t.Fatalf("%s: %s debloated bytes diverge", label, m.Name)
		}
	}
	if mono.Verified != staged.Verified {
		t.Fatalf("%s: verified %v vs %v", label, mono.Verified, staged.Verified)
	}
	if (mono.VerifyResult == nil) != (staged.VerifyResult == nil) {
		t.Fatalf("%s: verify result presence diverges", label)
	}
	if mono.VerifyResult != nil && mono.VerifyResult.Digest != staged.VerifyResult.Digest {
		t.Fatalf("%s: verify digests diverge", label)
	}
}

// TestGoldenPlannerMatchesMonolith sweeps every framework fixture through
// both implementations across the option space: plain, capped-verify
// (VerifySteps != MaxSteps exercises the overlapped reference-run node),
// and skip-verify.
func TestGoldenPlannerMatchesMonolith(t *testing.T) {
	frameworks := []string{
		mlframework.PyTorch, mlframework.TensorFlow,
		mlframework.VLLM, mlframework.HFTransformers,
	}
	opts := []Options{
		{MaxSteps: 4},
		{MaxSteps: 0, VerifySteps: 2}, // uncapped detection, capped reference run
		{MaxSteps: 3, SkipVerify: true},
	}
	for _, fw := range frameworks {
		w := goldenWorkload(t, fw)
		for oi, opt := range opts {
			label := fmt.Sprintf("%s/opt%d", fw, oi)
			mono, err := debloatMonolith(w, opt)
			if err != nil {
				t.Fatalf("%s: monolith: %v", label, err)
			}
			staged, err := Debloat(w, opt)
			if err != nil {
				t.Fatalf("%s: staged: %v", label, err)
			}
			equalResults(t, label, mono, staged)
		}
	}
}

// TestGoldenPlannerSharedMemo repeats one debloat over a shared memo: the
// second run must absorb every memoized stage yet return an identical
// Result — the warm path stays byte-faithful to the cold one.
func TestGoldenPlannerSharedMemo(t *testing.T) {
	w := goldenWorkload(t, mlframework.PyTorch)
	opt := Options{MaxSteps: 4, VerifySteps: 2}
	memo := plan.NewMemMemo(0)
	opt.Memo = memo

	cold, err := Debloat(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Len() == 0 {
		t.Fatal("shared memo must retain stage results")
	}
	warm, err := Debloat(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "warm-vs-cold", cold, warm)

	mono, err := debloatMonolith(w, Options{MaxSteps: 4, VerifySteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "warm-vs-monolith", mono, warm)
}

// TestGoldenPlannerSerialWidth pins determinism across pool widths: a
// single-worker plan and a wide plan produce identical results.
func TestGoldenPlannerSerialWidth(t *testing.T) {
	w := goldenWorkload(t, mlframework.TensorFlow)
	serial, err := Debloat(w, Options{MaxSteps: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Debloat(w, Options{MaxSteps: 4, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "serial-vs-wide", serial, wide)
}
