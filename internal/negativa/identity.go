package negativa

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
)

// InstallFingerprint hashes an install's identity: framework, library names
// in load order, and every library's content digest. Two installs with
// identical content fingerprint identically, so profiles detected on one
// serve the other. It anchors the detect stage's content key (detection
// depends on what code the workload can touch) and the serving plane's
// profile registry.
//
// Hashing each library's memoized ContentDigest instead of its raw bytes
// makes the fingerprint share hash work with the locate/compact stage keys
// and the analysis-index memo: an install ingested from disk fingerprints
// in O(names) once its libraries are indexed, instead of re-reading
// gigabytes of library bytes on every submit.
func InstallFingerprint(in *mlframework.Install) string {
	h := sha256.New()
	sep := []byte{0}
	io.WriteString(h, in.Framework)
	h.Write(sep)
	for _, name := range in.LibNames {
		io.WriteString(h, name)
		h.Write(sep)
		if lib := in.Library(name); lib != nil {
			d := lib.ContentDigest()
			h.Write(d[:])
		}
		h.Write(sep)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WorkloadIdentity canonically identifies a workload configuration for
// profile reuse. Everything that shapes what detection observes — graph,
// devices, load mode, dataset, epochs, per-item compute, and the step cap
// (the reference digest depends on it) — is part of the identity.
func WorkloadIdentity(w mlruntime.Workload, maxSteps int) string {
	devs := make([]string, len(w.Devices))
	for i, d := range w.Devices {
		devs[i] = d.Arch.String()
	}
	var model string
	var ops, batch int
	var train bool
	if w.Graph != nil {
		model, ops, batch, train = w.Graph.Model, len(w.Graph.Ops), w.Graph.Batch, w.Graph.Train
	}
	return fmt.Sprintf("%s|model=%s|ops=%d|batch=%d|train=%v|epochs=%d|data=%s|mode=%s|devs=%s|pic=%s|steps=%d",
		w.Name, model, ops, batch, train, w.Epochs, w.Data.Name, w.Mode, strings.Join(devs, ","), w.PerItemCompute, maxSteps)
}
