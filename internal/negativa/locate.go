package negativa

import (
	"fmt"
	"slices"

	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
)

// RemovalReason classifies why the locator removed a GPU element (§4.3,
// Figure 7).
type RemovalReason int

const (
	// Kept means the element is retained.
	Kept RemovalReason = iota
	// ReasonArchMismatch (Reason I): the element's compute-capability does
	// not match the GPU the workload runs on.
	ReasonArchMismatch
	// ReasonNoUsedKernel (Reason II): the architecture matches but no
	// CPU-launching kernel in the element's cubin was used.
	ReasonNoUsedKernel
)

func (r RemovalReason) String() string {
	switch r {
	case Kept:
		return "kept"
	case ReasonArchMismatch:
		return "arch-mismatch"
	case ReasonNoUsedKernel:
		return "no-used-kernel"
	}
	return "unknown"
}

// ElementDecision records the locator's verdict for one fatbin element.
type ElementDecision struct {
	Index  int
	Arch   gpuarch.SM
	Kind   uint16
	Reason RemovalReason
	// FileRange is the element's absolute file range (header + payload).
	FileRange fatbin.Range
	// PayloadRange is the payload's absolute file range — what compaction
	// zeroes when the element is removed.
	PayloadRange fatbin.Range
	// Kernels is the number of kernels in the element's cubin.
	Kernels int
}

// GPULocation is the kernel locator's output for one library.
type GPULocation struct {
	Decisions []ElementDecision
	// KeptBytes / TotalBytes are payload byte totals.
	KeptBytes  int64
	TotalBytes int64
}

// Kept counts retained elements.
func (g *GPULocation) Kept() int {
	n := 0
	for _, d := range g.Decisions {
		if d.Reason == Kept {
			n++
		}
	}
	return n
}

// RemovedBy counts removed elements with the given reason.
func (g *GPULocation) RemovedBy(r RemovalReason) int {
	n := 0
	for _, d := range g.Decisions {
		if d.Reason == r {
			n++
		}
	}
	return n
}

// LocateGPU runs the kernel locator on one library (§3.2) against its
// parse-once analysis index: used entry-kernel names resolve to element
// positions through the index's reverse map, and element retention is a set
// lookup — no fatbin or cubin bytes are re-parsed per call. archs is the
// set of device architectures the workload ran on (more than one under
// heterogeneous setups; typically a single entry).
//
// An element is retained iff its arch is in archs AND its cubin contains at
// least one used kernel. Because a kernel launched by another kernel is
// compiled into the same cubin, retaining the element retains every
// GPU-launching kernel in the call graph rooted at each used kernel.
func LocateGPU(lib *elfx.Library, usedKernels []string, archs []gpuarch.SM) (*GPULocation, error) {
	idx := lib.Index()
	loc := &GPULocation{}
	if !idx.HasFatbin {
		return loc, nil
	}
	if idx.FatbinErr != nil {
		return nil, idx.FatbinErr
	}
	usedElems := make(map[int32]bool, len(usedKernels))
	for _, k := range usedKernels {
		for _, pos := range idx.ElementsWithEntry(k) {
			usedElems[pos] = true
		}
	}
	archSet := make(map[gpuarch.SM]bool, len(archs))
	for _, a := range archs {
		archSet[a] = true
	}

	for pos := range idx.Elements {
		e := &idx.Elements[pos]
		dec := ElementDecision{
			Index:        e.Index,
			Arch:         e.Arch,
			Kind:         e.Kind,
			FileRange:    e.FileRange,
			PayloadRange: e.PayloadRange,
		}
		loc.TotalBytes += e.PayloadRange.Len()
		switch {
		case !archSet[e.Arch]:
			dec.Reason = ReasonArchMismatch
		case e.Kind != fatbin.KindCubin:
			// PTX and other kinds carry no resolvable kernels; the driver
			// loads the native cubin instead.
			dec.Reason = ReasonNoUsedKernel
		case !e.IsCubinBlob:
			// Already zeroed by a previous compaction pass (re-debloating a
			// debloated library is a no-op for such elements).
			dec.Reason = ReasonNoUsedKernel
		case e.ParseErr != nil:
			return nil, fmt.Errorf("negativa: %s element %d: %w", lib.Name, e.Index, e.ParseErr)
		default:
			dec.Kernels = e.Kernels
			dec.Reason = ReasonNoUsedKernel
			if usedElems[int32(pos)] {
				dec.Reason = Kept
			}
		}
		if dec.Reason == Kept {
			loc.KeptBytes += e.PayloadRange.Len()
		}
		loc.Decisions = append(loc.Decisions, dec)
	}
	return loc, nil
}

// CPULocation is the CPU locator's output: which function ranges to keep.
type CPULocation struct {
	// Keep are the absolute file ranges of used functions.
	Keep []fatbin.Range
	// TotalFuncs / KeptFuncs count symbol-table functions.
	TotalFuncs int
	KeptFuncs  int
	// KeptBytes / TotalBytes are .text byte totals.
	KeptBytes  int64
	TotalBytes int64
}

// LocateCPU maps used CPU function names to their .text file ranges through
// the analysis index's name map (Negativa's location phase for host code):
// O(used) lookups instead of an O(symbol-table) sweep per call. Keep ranges
// come out in symbol-table order, matching the sweeping implementation.
func LocateCPU(lib *elfx.Library, usedFuncs []string) *CPULocation {
	idx := lib.Index()
	loc := &CPULocation{TotalFuncs: len(lib.Funcs)}
	if s := lib.Section(".text"); s != nil {
		loc.TotalBytes = s.Range.Len()
	}
	var keepIdx []int32
	seen := make(map[string]bool, len(usedFuncs))
	for _, name := range usedFuncs {
		if seen[name] {
			continue
		}
		seen[name] = true
		keepIdx = append(keepIdx, idx.FuncsNamed(name)...)
	}
	slices.Sort(keepIdx)
	for _, fi := range keepIdx {
		fn := &lib.Funcs[fi]
		loc.Keep = append(loc.Keep, fn.Range)
		loc.KeptFuncs++
		loc.KeptBytes += fn.Range.Len()
	}
	return loc
}
