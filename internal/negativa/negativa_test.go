package negativa

import (
	"strings"
	"testing"
	"time"

	"negativaml/internal/cubin"
	"negativaml/internal/cudasim"
	"negativaml/internal/dataset"
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
	"negativaml/internal/mlruntime"
	"negativaml/internal/models"
)

var installCache = map[string]*mlframework.Install{}

func install(t *testing.T, fw string, tail int) *mlframework.Install {
	t.Helper()
	key := fw
	if in, ok := installCache[key]; ok {
		return in
	}
	in, err := mlframework.Generate(mlframework.Config{Framework: fw, TailLibs: tail})
	if err != nil {
		t.Fatal(err)
	}
	installCache[key] = in
	return in
}

func mobilenetTrain(t *testing.T) mlruntime.Workload {
	return mlruntime.Workload{
		Name:           "PyTorch/Train/MobileNetV2",
		Install:        install(t, mlframework.PyTorch, 15),
		Graph:          models.MobileNetV2(true, 16),
		Devices:        []gpuarch.Device{gpuarch.T4},
		Mode:           cudasim.EagerLoading,
		Data:           dataset.CIFAR10,
		Epochs:         3,
		PerItemCompute: 200 * time.Microsecond,
	}
}

func TestDetectUsage(t *testing.T) {
	p, err := DetectUsage(mobilenetTrain(t), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.UsedKernels["libtorch_cuda.so"]) == 0 {
		t.Error("no kernels detected in libtorch_cuda.so")
	}
	if len(p.UsedKernels["libcudnn_cnn_infer.so.8"]) == 0 {
		t.Error("no conv kernels detected in cuDNN")
	}
	if len(p.UsedFuncs["libtorch_cuda.so"]) == 0 {
		t.Error("no CPU functions detected")
	}
	// Detected kernels must be entry (CPU-launching) kernels only.
	for lib, ks := range p.UsedKernels {
		for _, k := range ks {
			if strings.Contains(k, "_dev") {
				t.Errorf("%s: device-only kernel %q must be invisible to the detector", lib, k)
			}
		}
	}
	if p.RunResult == nil || p.RunResult.Digest == 0 {
		t.Error("profile must carry the run result")
	}
}

func TestLocateGPUCriteria(t *testing.T) {
	in := install(t, mlframework.PyTorch, 0)
	lib := in.Library("libtorch_cuda.so")
	used := []string{models.KernelName("softmax", "c10", models.Forward)}
	loc, err := LocateGPU(lib, used, []gpuarch.SM{gpuarch.SM75})
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kept() == 0 {
		t.Fatal("softmax cubin should be retained")
	}
	kept75, keptOther := 0, 0
	for _, d := range loc.Decisions {
		switch d.Reason {
		case Kept:
			if d.Arch == gpuarch.SM75 {
				kept75++
			} else {
				keptOther++
			}
		case ReasonArchMismatch:
			if d.Arch == gpuarch.SM75 {
				t.Error("matching arch cannot be removed for arch mismatch")
			}
		}
	}
	if keptOther != 0 {
		t.Errorf("%d non-sm75 elements retained", keptOther)
	}
	if kept75 != 1 {
		t.Errorf("exactly the softmax engine should be kept, got %d", kept75)
	}
	// Reason partition covers all decisions.
	if loc.Kept()+loc.RemovedBy(ReasonArchMismatch)+loc.RemovedBy(ReasonNoUsedKernel) != len(loc.Decisions) {
		t.Error("reasons must partition the element set")
	}
}

func TestLocateGPUNoKernelsUsed(t *testing.T) {
	in := install(t, mlframework.PyTorch, 0)
	lib := in.Library("libcusparse.so.12")
	loc, err := LocateGPU(lib, nil, []gpuarch.SM{gpuarch.SM75})
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kept() != 0 {
		t.Errorf("nothing used -> nothing kept, got %d", loc.Kept())
	}
	if loc.RemovedBy(ReasonArchMismatch) == 0 || loc.RemovedBy(ReasonNoUsedKernel) == 0 {
		t.Error("both removal reasons should appear")
	}
}

func TestLocateCPU(t *testing.T) {
	in := install(t, mlframework.PyTorch, 0)
	lib := in.Library("libtorch_cuda.so")
	used := []string{lib.Funcs[1].Name, lib.Funcs[3].Name}
	loc := LocateCPU(lib, used)
	if loc.KeptFuncs != 2 {
		t.Errorf("kept = %d, want 2", loc.KeptFuncs)
	}
	if loc.TotalFuncs != len(lib.Funcs) {
		t.Error("total mismatch")
	}
	if loc.KeptBytes <= 0 || loc.KeptBytes >= loc.TotalBytes {
		t.Errorf("kept bytes %d of %d implausible", loc.KeptBytes, loc.TotalBytes)
	}
}

func TestCompactPreservesKeptKillsRest(t *testing.T) {
	in := install(t, mlframework.PyTorch, 0)
	lib := in.Library("libtorch_cuda.so")
	usedFuncs := []string{lib.Funcs[0].Name}
	usedKernels := []string{models.KernelName("softmax", "c10", models.Forward)}
	cpuLoc := LocateCPU(lib, usedFuncs)
	gpuLoc, err := LocateGPU(lib, usedKernels, []gpuarch.SM{gpuarch.SM75})
	if err != nil {
		t.Fatal(err)
	}
	out := Compact(lib, cpuLoc, gpuLoc).Materialize()
	if len(out) != len(lib.Data) {
		t.Fatal("compaction must not change file size")
	}
	dl, err := elfx.Parse(lib.Name, out)
	if err != nil {
		t.Fatalf("debloated library no longer parses: %v", err)
	}
	// Kept function alive, others dead.
	if !dl.FunctionAlive(dl.FindFunction(usedFuncs[0])) {
		t.Error("kept function died")
	}
	dead := 0
	for i := range dl.Funcs {
		if !dl.FunctionAlive(&dl.Funcs[i]) {
			dead++
		}
	}
	if dead != len(dl.Funcs)-1 {
		t.Errorf("dead functions = %d, want %d", dead, len(dl.Funcs)-1)
	}
	// Fatbin still parses; kept element intact; removed payloads zeroed.
	fb, _, err := dl.Fatbin()
	if err != nil {
		t.Fatalf("debloated fatbin no longer parses: %v", err)
	}
	cubins := fatbin.ExtractCubins(fb)
	if len(cubins) != 1 {
		t.Fatalf("surviving cubins = %d, want 1", len(cubins))
	}
	for _, blob := range cubins {
		c, err := cubin.Parse(blob)
		if err != nil {
			t.Fatal(err)
		}
		if c.FindKernel(usedKernels[0]) < 0 {
			t.Error("kept cubin must contain the used kernel")
		}
		// The cubin's device-only children ride along (same-cubin invariant).
		devOnly := 0
		for _, k := range c.Kernels {
			if k.DeviceOnly() {
				devOnly++
			}
		}
		if devOnly == 0 {
			t.Error("device-only (GPU-launching) kernels must be retained with their cubin")
		}
	}
	// Structure headers preserved byte-for-byte: region/element headers.
	origFB, _, _ := lib.Fatbin()
	if origFB.ElementCount() != fb.ElementCount() {
		t.Errorf("element count changed: %d -> %d", origFB.ElementCount(), fb.ElementCount())
	}
}

func TestDebloatEndToEnd(t *testing.T) {
	w := mobilenetTrain(t)
	res, err := Debloat(w, Options{MaxSteps: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("debloated workload must verify")
	}
	agg := res.Aggregate()
	if agg.Libs != len(w.Install.LibNames) {
		t.Errorf("libs = %d, want %d", agg.Libs, len(w.Install.LibNames))
	}
	// The paper's headline claims, as inequalities on our measurements.
	if agg.CPUReductionPct() < 40 {
		t.Errorf("CPU reduction %.1f%% too low", agg.CPUReductionPct())
	}
	if agg.GPUReductionPct() < 60 {
		t.Errorf("GPU reduction %.1f%% too low", agg.GPUReductionPct())
	}
	if agg.FuncReductionPct() < 80 {
		t.Errorf("function reduction %.1f%% too low", agg.FuncReductionPct())
	}
	if agg.ElemReductionPct() < 90 {
		t.Errorf("element reduction %.1f%% too low", agg.ElemReductionPct())
	}
	if agg.FileReductionPct() < 30 {
		t.Errorf("file reduction %.1f%% too low", agg.FileReductionPct())
	}
	// GPU code more bloated than CPU code.
	if agg.GPUReductionPct() <= agg.CPUReductionPct()-10 {
		t.Errorf("GPU reduction (%.1f%%) should rival or exceed CPU (%.1f%%)",
			agg.GPUReductionPct(), agg.CPUReductionPct())
	}
	if res.EndToEnd <= res.DetectTime {
		t.Error("end-to-end must include analysis time")
	}
	// Reason I dominates removals (Figure 7).
	var archMis, noUsed int
	for _, lr := range res.Libs {
		archMis += lr.RemovedArchMismatch
		noUsed += lr.RemovedNoUsedKernel
	}
	if archMis == 0 || noUsed == 0 {
		t.Fatal("both removal reasons should appear")
	}
	frac := float64(archMis) / float64(archMis+noUsed)
	if frac < 0.7 || frac > 0.97 {
		t.Errorf("Reason I share = %.2f, want ~0.8-0.9", frac)
	}
}

func TestDebloatedRunImprovesRuntime(t *testing.T) {
	w := mobilenetTrain(t)
	w.Graph = models.MobileNetV2(false, 1) // inference: load-dominated
	res, err := Debloat(w, Options{MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := mlruntime.Run(w, mlruntime.Options{MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	deb := res.VerifyResult
	if deb.PeakCPUBytes >= orig.PeakCPUBytes {
		t.Errorf("peak CPU should drop: %d -> %d", orig.PeakCPUBytes, deb.PeakCPUBytes)
	}
	if deb.PeakGPUBytes >= orig.PeakGPUBytes {
		t.Errorf("peak GPU should drop: %d -> %d", orig.PeakGPUBytes, deb.PeakGPUBytes)
	}
	if deb.ExecTime >= orig.ExecTime {
		t.Errorf("exec time should drop: %v -> %v", orig.ExecTime, deb.ExecTime)
	}
}

func TestDebloatSkipVerify(t *testing.T) {
	res, err := Debloat(mobilenetTrain(t), Options{MaxSteps: 5, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified || res.VerifyResult != nil {
		t.Error("verification should be skipped")
	}
	if res.Lib("libtorch_cuda.so") == nil {
		t.Error("Lib lookup failed")
	}
	if res.Lib("nope") != nil {
		t.Error("unknown lib should be nil")
	}
}

func TestDetectionOverheadOrdering(t *testing.T) {
	base, det, nsys, err := DetectionOverhead(mobilenetTrain(t), 200)
	if err != nil {
		t.Fatal(err)
	}
	if !(base < det && det < nsys) {
		t.Errorf("overhead ordering violated: base=%v detector=%v nsys=%v", base, det, nsys)
	}
}

func TestPTXElementsRemoved(t *testing.T) {
	// Hand-build a library with a PTX element to cover the PTX path.
	b := elfx.NewBuilder("libptx.so")
	b.AddFunction("f", 32)
	c := cubin.New(gpuarch.SM75)
	c.AddKernel(cubin.Kernel{Name: "k_fwd", Code: []byte{1, 2, 3}, Flags: cubin.FlagEntry})
	blob, _ := c.Marshal()
	fb := &fatbin.FatBin{}
	r := fb.AddRegion()
	r.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: gpuarch.SM75, Payload: blob})
	r.AddElement(fatbin.Element{Kind: fatbin.KindPTX, Arch: gpuarch.SM75, Payload: []byte(".ptx k")})
	fbB, _ := fb.Marshal()
	b.SetFatbin(fbB)
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib, _ := elfx.Parse("libptx.so", data)
	loc, err := LocateGPU(lib, []string{"k_fwd"}, []gpuarch.SM{gpuarch.SM75})
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kept() != 1 {
		t.Errorf("kept = %d, want 1 (cubin only)", loc.Kept())
	}
	if loc.RemovedBy(ReasonNoUsedKernel) != 1 {
		t.Error("PTX element should be removed as Reason II")
	}
}

func TestReportPercentages(t *testing.T) {
	lr := &LibraryReport{
		FileEffective: 1000, FileEffectiveAfter: 400,
		CPUSize: 100, CPUSizeAfter: 30,
		FuncCount: 10, FuncKept: 1,
		GPUSize: 800, GPUSizeAfter: 200,
		ElemCount: 50, ElemKept: 2,
	}
	if got := lr.FileReductionPct(); got != 60 {
		t.Errorf("file reduction = %v", got)
	}
	if got := lr.CPUReductionPct(); got != 70 {
		t.Errorf("cpu reduction = %v", got)
	}
	if got := lr.FuncReductionPct(); got != 90 {
		t.Errorf("func reduction = %v", got)
	}
	if got := lr.GPUReductionPct(); got != 75 {
		t.Errorf("gpu reduction = %v", got)
	}
	if got := lr.ElemReductionPct(); got != 96 {
		t.Errorf("elem reduction = %v", got)
	}
	if lr.FileSavedBytes() != 600 {
		t.Error("saved bytes wrong")
	}
	if !lr.HasGPU() {
		t.Error("HasGPU wrong")
	}
	empty := &LibraryReport{}
	if empty.FileReductionPct() != 0 || empty.HasGPU() {
		t.Error("zero-value report should be inert")
	}
}
