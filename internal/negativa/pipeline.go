package negativa

import (
	"fmt"
	"runtime"
	"time"

	"negativaml/internal/elfx"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlruntime"
	"negativaml/internal/plan"
)

// Analysis cost constants (virtual time). Function and element counts are
// generated at 1/100 and ~1/10 of the paper's, so per-item costs are scaled
// up to land end-to-end times near Table 8 (DESIGN.md §4).
const (
	locatePerFunc    = 48 * time.Millisecond
	locatePerElement = 18 * time.Millisecond
	compactPerKB     = 400 * time.Microsecond
)

// Options configure a Debloat run.
type Options struct {
	// MaxSteps caps the detection and verification runs (0 = full dataset).
	// Usage coverage saturates within the first steps; timing-sensitive
	// experiments run uncapped.
	MaxSteps int
	// VerifySteps, when non-zero and different from MaxSteps, caps the
	// verification run separately; a capped original run is then executed
	// to obtain a comparable reference digest (detection stays uncapped so
	// Table 8 timing is faithful, while verification stays cheap).
	VerifySteps int
	// SkipVerify skips the verification re-run.
	SkipVerify bool
	// Workers bounds the stage plan's concurrently executing nodes
	// (default runtime.NumCPU()). Independent stages — per-library
	// locate/compact, the capped reference run, the verification re-run —
	// overlap up to this width.
	Workers int
	// Memo, when non-nil, memoizes stage results across Debloat calls by
	// content key (repeat runs against the same install absorb detection
	// and analysis). Nil uses a fresh per-call memo, which still
	// deduplicates identical stages within the run.
	Memo plan.Memo
}

// Result is the full pipeline output for one workload.
type Result struct {
	Workload string
	Profile  *Profile
	// Libs holds one report per shared library, in install load order.
	Libs []*LibraryReport

	// byName indexes Libs by library name; built once at pipeline end by
	// IndexLibs so verification's per-library lookups are O(1) rather than
	// rebuilt-per-call linear scans.
	byName map[string]*LibraryReport

	// DetectTime is the profiled run's virtual time (includes detector
	// overhead), AnalysisTime the locate+compact virtual time; EndToEnd is
	// their sum — the paper's Table 8 metric.
	DetectTime   time.Duration
	AnalysisTime time.Duration
	EndToEnd     time.Duration

	// Verified reports whether the debloated re-run reproduced the original
	// output digest. VerifyResult holds the re-run's metrics.
	Verified     bool
	VerifyResult *mlruntime.Result
}

// DebloatedLibs materializes the compacted images keyed by library name.
// Images are built lazily at call time — holding a Result costs O(ranges),
// not O(install-size).
func (r *Result) DebloatedLibs() map[string][]byte {
	out := make(map[string][]byte, len(r.Libs))
	for _, lr := range r.Libs {
		out[lr.Name] = lr.Debloated()
	}
	return out
}

// IndexLibs (re)builds the by-name report index. The pipeline calls it once
// after assembling Libs; callers constructing a Result by hand may call it
// or rely on Lib's linear fallback.
func (r *Result) IndexLibs() {
	r.byName = make(map[string]*LibraryReport, len(r.Libs))
	for _, lr := range r.Libs {
		r.byName[lr.Name] = lr
	}
}

// Lib returns the report for the named library, or nil.
func (r *Result) Lib(name string) *LibraryReport {
	if r.byName != nil {
		return r.byName[name]
	}
	for _, lr := range r.Libs {
		if lr.Name == name {
			return lr
		}
	}
	return nil
}

// DeviceArchs returns the distinct GPU architectures of a device set in
// first-seen order — the architecture filter the locator applies (Reason I
// removal, §3.2).
func DeviceArchs(devices []gpuarch.Device) []gpuarch.SM {
	archSet := map[gpuarch.SM]bool{}
	var archs []gpuarch.SM
	for _, dev := range devices {
		if !archSet[dev.Arch] {
			archSet[dev.Arch] = true
			archs = append(archs, dev.Arch)
		}
	}
	return archs
}

// LibDebloat is the locate+compact output for a single library: the report
// (including the compacted image) and the virtual analysis time the two
// stages cost. It is the unit of work the batch service parallelizes and
// caches content-addressed — the result depends only on the library bytes,
// the used-symbol sets, and the target architectures.
type LibDebloat struct {
	Report   *LibraryReport
	Analysis time.Duration
}

// LocateAndCompactLib runs the location and compaction stages on one
// library in sequence — the composition of the LocateLib and
// CompactLocated stage functions the planner schedules separately. The
// function only reads the library, so concurrent calls on a shared
// *elfx.Library are safe.
func LocateAndCompactLib(lib *elfx.Library, usedFuncs, usedKernels []string, archs []gpuarch.SM) (*LibDebloat, error) {
	loc, err := LocateLib(lib, usedFuncs, usedKernels, archs)
	if err != nil {
		return nil, err
	}
	return CompactLocated(lib, loc, usedFuncs, usedKernels), nil
}

// Debloat runs the full Negativa-ML pipeline on a workload as a stage
// plan: a detect node feeds per-library locate and compact nodes, and a
// verification node (plus, when VerifySteps differs from MaxSteps, a
// capped reference-run node that overlaps with it) closes the graph. Every
// node carries a content-derived key; with a shared Options.Memo, repeat
// runs absorb unchanged stages. The result is byte-identical to the
// pre-planner monolithic pipeline — the golden equivalence suite holds the
// two implementations together.
func Debloat(w mlruntime.Workload, opt Options) (*Result, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	memo := opt.Memo
	if memo == nil {
		memo = plan.NewMemMemo(0)
	}

	fp := InstallFingerprint(w.Install)
	wid := WorkloadIdentity(w, opt.MaxSteps)
	archs := DeviceArchs(w.Devices)
	names := w.Install.LibNames

	g := plan.New()
	detect := g.Node(StageDetect, nil, plan.StaticKey(DetectKey(fp, wid)), func([]any) (any, error) {
		p, err := DetectUsage(w, opt.MaxSteps)
		if err != nil {
			return nil, fmt.Errorf("negativa: detection: %w", err)
		}
		return p, nil
	})

	compacts := make([]*plan.Node, len(names))
	for i, name := range names {
		name := name
		lib := w.Install.Library(name)
		idx := g.Node(StageLibIndex, nil, plan.StaticKey(LibIndexKey(lib)), func([]any) (any, error) {
			return lib.Index(), nil
		})
		loc := g.Node(StageLocate, []*plan.Node{detect, idx}, func(deps []any) (plan.Key, error) {
			p := deps[0].(*Profile)
			return LocateKey(lib, p.UsedFuncs[name], p.UsedKernels[name], archs), nil
		}, func(deps []any) (any, error) {
			// The memoized value is a lazy handle (the canonical locate-
			// stage value type): resolution runs only when a compact miss
			// forces it. Capture just the inputs — the handle may outlive
			// this call in a shared memo.
			p := deps[0].(*Profile)
			uf, uk := p.UsedFuncs[name], p.UsedKernels[name]
			return NewLocationHandle(func() (*LibLocation, error) {
				return LocateLib(lib, uf, uk, archs)
			}), nil
		})
		compacts[i] = g.Node(StageCompact, []*plan.Node{detect, loc}, func([]any) (plan.Key, error) {
			// Compaction is keyed by its locate stage's key, resolved by the
			// time this dependent's key function runs.
			return CompactKey(loc.ResolvedKey()), nil
		}, func(deps []any) (any, error) {
			p := deps[0].(*Profile)
			ll, err := deps[1].(*LocationHandle).Force()
			if err != nil {
				return nil, fmt.Errorf("negativa: locate %s: %w", name, err)
			}
			return CompactLocated(lib, ll, p.UsedFuncs[name], p.UsedKernels[name]), nil
		}).WithHint(lib)
	}

	var refNode, verifyNode *plan.Node
	steps := opt.VerifySteps
	if steps == 0 {
		steps = opt.MaxSteps
	}
	if !opt.SkipVerify {
		if steps != opt.MaxSteps {
			// The capped reference run has no dependencies: it enters the
			// pool immediately and overlaps detection and the verification
			// fan-out instead of running inline between them.
			refNode = g.Node(StageVerifyRef, nil, plan.StaticKey(VerifyRefKey(fp, WorkloadIdentity(w, steps))), func([]any) (any, error) {
				ref, err := mlruntime.Run(w, mlruntime.Options{MaxSteps: steps})
				if err != nil {
					return nil, fmt.Errorf("negativa: reference run failed: %w", err)
				}
				return ref, nil
			})
		}
		verifyNode = g.Node(StageVerifyRun, compacts, func([]any) (plan.Key, error) {
			hashes := make([]string, len(compacts))
			for i, c := range compacts {
				hashes[i] = c.ResolvedKey().Hash
			}
			return VerifyRunKey(fp, wid, steps, hashes), nil
		}, func(deps []any) (any, error) {
			debloated := make(map[string][]byte, len(deps))
			for i, d := range deps {
				debloated[names[i]] = d.(*LibDebloat).Report.Debloated()
			}
			clone, err := w.Install.CloneWithLibs(debloated)
			if err != nil {
				return nil, fmt.Errorf("negativa: verify: %w", err)
			}
			vw := w
			vw.Install = clone
			vr, err := mlruntime.Run(vw, mlruntime.Options{MaxSteps: steps})
			if err != nil {
				return nil, fmt.Errorf("negativa: verification run failed: %w", err)
			}
			return vr, nil
		})
	}

	if err := g.Execute(plan.NewPool(workers), memo, nil); err != nil {
		return nil, err
	}

	// ---- Assembly: fold node values into the monolith's exact Result. ----
	profile := detect.Value().(*Profile)
	res := &Result{
		Workload:   w.Name,
		Profile:    profile,
		DetectTime: profile.RunResult.ExecTime,
	}
	var analysis time.Duration
	for i, name := range names {
		ld := compacts[i].Value().(*LibDebloat)
		rep := ld.Report
		if rep.Name != name {
			// Memo hit computed under a different library name (identical
			// bytes elsewhere); re-label a shallow copy sharing the
			// immutable sparse image.
			relabeled := *rep
			relabeled.Name = name
			rep = &relabeled
		}
		res.Libs = append(res.Libs, rep)
		// Virtual analysis time is charged per library whether or not the
		// stage memo absorbed the work — Debloat models the paper's
		// single-tool cost; hit accounting is the batch service's concern.
		analysis += ld.Analysis
	}
	res.IndexLibs()
	res.AnalysisTime = analysis
	res.EndToEnd = res.DetectTime + res.AnalysisTime

	if verifyNode != nil {
		refDigest := profile.RunResult.Digest
		if refNode != nil {
			refDigest = refNode.Value().(*mlruntime.Result).Digest
		}
		vr := verifyNode.Value().(*mlruntime.Result)
		res.VerifyResult = vr
		res.Verified = vr.Digest == refDigest
	}
	return res, nil
}

// debloatMonolith is the pre-planner serial pipeline, kept as the golden
// reference implementation: the equivalence suite asserts Debloat's staged
// plan produces a byte-identical Result. It must not grow features — only
// mirror what the planner is required to reproduce.
func debloatMonolith(w mlruntime.Workload, opt Options) (*Result, error) {
	profile, err := DetectUsage(w, opt.MaxSteps)
	if err != nil {
		return nil, fmt.Errorf("negativa: detection: %w", err)
	}
	archs := DeviceArchs(w.Devices)

	res := &Result{
		Workload:   w.Name,
		Profile:    profile,
		DetectTime: profile.RunResult.ExecTime,
	}

	var analysis time.Duration
	for _, name := range w.Install.LibNames {
		lib := w.Install.Library(name)
		ld, err := LocateAndCompactLib(lib, profile.UsedFuncs[name], profile.UsedKernels[name], archs)
		if err != nil {
			return nil, fmt.Errorf("negativa: locate %s: %w", name, err)
		}
		res.Libs = append(res.Libs, ld.Report)
		analysis += ld.Analysis
	}
	res.IndexLibs()
	res.AnalysisTime = analysis
	res.EndToEnd = res.DetectTime + res.AnalysisTime

	if !opt.SkipVerify {
		steps := opt.VerifySteps
		if steps == 0 {
			steps = opt.MaxSteps
		}
		refDigest := profile.RunResult.Digest
		if steps != opt.MaxSteps {
			ref, err := mlruntime.Run(w, mlruntime.Options{MaxSteps: steps})
			if err != nil {
				return nil, fmt.Errorf("negativa: reference run failed: %w", err)
			}
			refDigest = ref.Digest
		}
		clone, err := w.Install.CloneWithLibs(res.DebloatedLibs())
		if err != nil {
			return nil, fmt.Errorf("negativa: verify: %w", err)
		}
		vw := w
		vw.Install = clone
		vr, err := mlruntime.Run(vw, mlruntime.Options{MaxSteps: steps})
		if err != nil {
			return nil, fmt.Errorf("negativa: verification run failed: %w", err)
		}
		res.VerifyResult = vr
		res.Verified = vr.Digest == refDigest
	}
	return res, nil
}

// Totals aggregates reports across libraries (one Table 2 row).
type Totals struct {
	Libs               int
	FileEffective      int64
	FileEffectiveAfter int64
	CPUSize            int64
	CPUSizeAfter       int64
	Funcs              int
	FuncsKept          int
	GPUSize            int64
	GPUSizeAfter       int64
	Elems              int
	ElemsKept          int
}

// Aggregate sums the per-library reports.
func (r *Result) Aggregate() Totals {
	var t Totals
	t.Libs = len(r.Libs)
	for _, lr := range r.Libs {
		t.FileEffective += lr.FileEffective
		t.FileEffectiveAfter += lr.FileEffectiveAfter
		t.CPUSize += lr.CPUSize
		t.CPUSizeAfter += lr.CPUSizeAfter
		t.Funcs += lr.FuncCount
		t.FuncsKept += lr.FuncKept
		t.GPUSize += lr.GPUSize
		t.GPUSizeAfter += lr.GPUSizeAfter
		t.Elems += lr.ElemCount
		t.ElemsKept += lr.ElemKept
	}
	return t
}

// FileReductionPct, CPU/GPU and count reductions for the aggregate.
func (t Totals) FileReductionPct() float64 { return pct(t.FileEffective, t.FileEffectiveAfter) }

// CPUReductionPct is the aggregate CPU-code size reduction.
func (t Totals) CPUReductionPct() float64 { return pct(t.CPUSize, t.CPUSizeAfter) }

// FuncReductionPct is the aggregate function-count reduction.
func (t Totals) FuncReductionPct() float64 { return pct(int64(t.Funcs), int64(t.FuncsKept)) }

// GPUReductionPct is the aggregate GPU-code size reduction.
func (t Totals) GPUReductionPct() float64 { return pct(t.GPUSize, t.GPUSizeAfter) }

// ElemReductionPct is the aggregate element-count reduction.
func (t Totals) ElemReductionPct() float64 { return pct(int64(t.Elems), int64(t.ElemsKept)) }
