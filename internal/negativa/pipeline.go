package negativa

import (
	"fmt"
	"time"

	"negativaml/internal/elfx"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlruntime"
)

// Analysis cost constants (virtual time). Function and element counts are
// generated at 1/100 and ~1/10 of the paper's, so per-item costs are scaled
// up to land end-to-end times near Table 8 (DESIGN.md §4).
const (
	locatePerFunc    = 48 * time.Millisecond
	locatePerElement = 18 * time.Millisecond
	compactPerKB     = 400 * time.Microsecond
)

// Options configure a Debloat run.
type Options struct {
	// MaxSteps caps the detection and verification runs (0 = full dataset).
	// Usage coverage saturates within the first steps; timing-sensitive
	// experiments run uncapped.
	MaxSteps int
	// VerifySteps, when non-zero and different from MaxSteps, caps the
	// verification run separately; a capped original run is then executed
	// to obtain a comparable reference digest (detection stays uncapped so
	// Table 8 timing is faithful, while verification stays cheap).
	VerifySteps int
	// SkipVerify skips the verification re-run.
	SkipVerify bool
}

// Result is the full pipeline output for one workload.
type Result struct {
	Workload string
	Profile  *Profile
	// Libs holds one report per shared library, in install load order.
	Libs []*LibraryReport

	// byName indexes Libs by library name; built once at pipeline end by
	// IndexLibs so verification's per-library lookups are O(1) rather than
	// rebuilt-per-call linear scans.
	byName map[string]*LibraryReport

	// DetectTime is the profiled run's virtual time (includes detector
	// overhead), AnalysisTime the locate+compact virtual time; EndToEnd is
	// their sum — the paper's Table 8 metric.
	DetectTime   time.Duration
	AnalysisTime time.Duration
	EndToEnd     time.Duration

	// Verified reports whether the debloated re-run reproduced the original
	// output digest. VerifyResult holds the re-run's metrics.
	Verified     bool
	VerifyResult *mlruntime.Result
}

// DebloatedLibs materializes the compacted images keyed by library name.
// Images are built lazily at call time — holding a Result costs O(ranges),
// not O(install-size).
func (r *Result) DebloatedLibs() map[string][]byte {
	out := make(map[string][]byte, len(r.Libs))
	for _, lr := range r.Libs {
		out[lr.Name] = lr.Debloated()
	}
	return out
}

// IndexLibs (re)builds the by-name report index. The pipeline calls it once
// after assembling Libs; callers constructing a Result by hand may call it
// or rely on Lib's linear fallback.
func (r *Result) IndexLibs() {
	r.byName = make(map[string]*LibraryReport, len(r.Libs))
	for _, lr := range r.Libs {
		r.byName[lr.Name] = lr
	}
}

// Lib returns the report for the named library, or nil.
func (r *Result) Lib(name string) *LibraryReport {
	if r.byName != nil {
		return r.byName[name]
	}
	for _, lr := range r.Libs {
		if lr.Name == name {
			return lr
		}
	}
	return nil
}

// DeviceArchs returns the distinct GPU architectures of a device set in
// first-seen order — the architecture filter the locator applies (Reason I
// removal, §3.2).
func DeviceArchs(devices []gpuarch.Device) []gpuarch.SM {
	archSet := map[gpuarch.SM]bool{}
	var archs []gpuarch.SM
	for _, dev := range devices {
		if !archSet[dev.Arch] {
			archSet[dev.Arch] = true
			archs = append(archs, dev.Arch)
		}
	}
	return archs
}

// LibDebloat is the locate+compact output for a single library: the report
// (including the compacted image) and the virtual analysis time the two
// stages cost. It is the unit of work the batch service parallelizes and
// caches content-addressed — the result depends only on the library bytes,
// the used-symbol sets, and the target architectures.
type LibDebloat struct {
	Report   *LibraryReport
	Analysis time.Duration
}

// LocateAndCompactLib runs the location and compaction stages on one
// library: used CPU functions map to .text file ranges through the symbol
// table, used kernels decide fatbin element retention for the given
// architectures, and every unretained range joins the sparse image's
// zeroed set. Every report size is computed analytically from the range
// set and the library's zero-byte prefix sum — no post-compaction buffer
// is allocated or rescanned. The function only reads the library, so
// concurrent calls on a shared *elfx.Library are safe.
func LocateAndCompactLib(lib *elfx.Library, usedFuncs, usedKernels []string, archs []gpuarch.SM) (*LibDebloat, error) {
	cpuLoc := LocateCPU(lib, usedFuncs)
	gpuLoc, err := LocateGPU(lib, usedKernels, archs)
	if err != nil {
		return nil, err
	}
	sparse := Compact(lib, cpuLoc, gpuLoc)

	idx := lib.Index()
	lr := &LibraryReport{
		Name:                lib.Name,
		FileSize:            lib.FileSize(),
		FileEffective:       idx.NonZeroBytes(),
		FileEffectiveAfter:  sparse.NonZeroBytes(),
		CPUSize:             cpuLoc.TotalBytes,
		FuncCount:           cpuLoc.TotalFuncs,
		FuncKept:            cpuLoc.KeptFuncs,
		ElemCount:           len(gpuLoc.Decisions),
		ElemKept:            gpuLoc.Kept(),
		RemovedArchMismatch: gpuLoc.RemovedBy(ReasonArchMismatch),
		RemovedNoUsedKernel: gpuLoc.RemovedBy(ReasonNoUsedKernel),
		ResidentBytes:       idx.ResidentBytes(),
		ResidentBytesAfter:  sparse.ResidentBytes(),
		UsedFuncs:           usedFuncs,
		UsedKernels:         usedKernels,
		Sparse:              sparse,
	}
	if text := lib.Section(".text"); text != nil {
		lr.CPUSizeAfter = sparse.NonZeroBytesIn(text.Range)
	}
	if fbRange, ok := lib.FatbinRange(); ok {
		// Compare effective (non-zero) bytes on both sides.
		lr.GPUSize = idx.NonZeroBytesIn(fbRange)
		lr.GPUSizeAfter = sparse.NonZeroBytesIn(fbRange)
	}

	analysis := time.Duration(cpuLoc.TotalFuncs)*locatePerFunc +
		time.Duration(len(gpuLoc.Decisions))*locatePerElement +
		time.Duration(lib.FileSize()/1024)*compactPerKB
	return &LibDebloat{Report: lr, Analysis: analysis}, nil
}

// Debloat runs the full Negativa-ML pipeline on a workload: profile the run,
// locate used code in every shared library, compact, and verify. Libraries
// are processed serially; the batch service (internal/dserve) runs the same
// per-library stage through a bounded worker pool and a content-addressed
// cache.
func Debloat(w mlruntime.Workload, opt Options) (*Result, error) {
	profile, err := DetectUsage(w, opt.MaxSteps)
	if err != nil {
		return nil, fmt.Errorf("negativa: detection: %w", err)
	}
	archs := DeviceArchs(w.Devices)

	res := &Result{
		Workload:   w.Name,
		Profile:    profile,
		DetectTime: profile.RunResult.ExecTime,
	}

	var analysis time.Duration
	for _, name := range w.Install.LibNames {
		lib := w.Install.Library(name)
		ld, err := LocateAndCompactLib(lib, profile.UsedFuncs[name], profile.UsedKernels[name], archs)
		if err != nil {
			return nil, fmt.Errorf("negativa: locate %s: %w", name, err)
		}
		res.Libs = append(res.Libs, ld.Report)
		analysis += ld.Analysis
	}
	res.IndexLibs()
	res.AnalysisTime = analysis
	res.EndToEnd = res.DetectTime + res.AnalysisTime

	if !opt.SkipVerify {
		steps := opt.VerifySteps
		if steps == 0 {
			steps = opt.MaxSteps
		}
		refDigest := profile.RunResult.Digest
		if steps != opt.MaxSteps {
			ref, err := mlruntime.Run(w, mlruntime.Options{MaxSteps: steps})
			if err != nil {
				return nil, fmt.Errorf("negativa: reference run failed: %w", err)
			}
			refDigest = ref.Digest
		}
		clone, err := w.Install.CloneWithLibs(res.DebloatedLibs())
		if err != nil {
			return nil, fmt.Errorf("negativa: verify: %w", err)
		}
		vw := w
		vw.Install = clone
		vr, err := mlruntime.Run(vw, mlruntime.Options{MaxSteps: steps})
		if err != nil {
			return nil, fmt.Errorf("negativa: verification run failed: %w", err)
		}
		res.VerifyResult = vr
		res.Verified = vr.Digest == refDigest
	}
	return res, nil
}

// Totals aggregates reports across libraries (one Table 2 row).
type Totals struct {
	Libs               int
	FileEffective      int64
	FileEffectiveAfter int64
	CPUSize            int64
	CPUSizeAfter       int64
	Funcs              int
	FuncsKept          int
	GPUSize            int64
	GPUSizeAfter       int64
	Elems              int
	ElemsKept          int
}

// Aggregate sums the per-library reports.
func (r *Result) Aggregate() Totals {
	var t Totals
	t.Libs = len(r.Libs)
	for _, lr := range r.Libs {
		t.FileEffective += lr.FileEffective
		t.FileEffectiveAfter += lr.FileEffectiveAfter
		t.CPUSize += lr.CPUSize
		t.CPUSizeAfter += lr.CPUSizeAfter
		t.Funcs += lr.FuncCount
		t.FuncsKept += lr.FuncKept
		t.GPUSize += lr.GPUSize
		t.GPUSizeAfter += lr.GPUSizeAfter
		t.Elems += lr.ElemCount
		t.ElemsKept += lr.ElemKept
	}
	return t
}

// FileReductionPct, CPU/GPU and count reductions for the aggregate.
func (t Totals) FileReductionPct() float64 { return pct(t.FileEffective, t.FileEffectiveAfter) }

// CPUReductionPct is the aggregate CPU-code size reduction.
func (t Totals) CPUReductionPct() float64 { return pct(t.CPUSize, t.CPUSizeAfter) }

// FuncReductionPct is the aggregate function-count reduction.
func (t Totals) FuncReductionPct() float64 { return pct(int64(t.Funcs), int64(t.FuncsKept)) }

// GPUReductionPct is the aggregate GPU-code size reduction.
func (t Totals) GPUReductionPct() float64 { return pct(t.GPUSize, t.GPUSizeAfter) }

// ElemReductionPct is the aggregate element-count reduction.
func (t Totals) ElemReductionPct() float64 { return pct(int64(t.Elems), int64(t.ElemsKept)) }
