package negativa

// LibraryReport captures the before/after state of one shared library.
// "Effective" sizes count non-zero bytes — the storage a zero-compacted
// file actually occupies (DESIGN.md: the compactor zeroes ranges in place
// to preserve addresses; sparse storage reclaims the zeroed blocks).
type LibraryReport struct {
	Name string

	// FileSize is the original file size in bytes.
	FileSize int64
	// FileEffective / FileEffectiveAfter are non-zero byte counts before
	// and after compaction.
	FileEffective      int64
	FileEffectiveAfter int64

	// CPUSize is the .text section size; CPUSizeAfter its effective size
	// after compaction.
	CPUSize      int64
	CPUSizeAfter int64
	// FuncCount / FuncKept count symbol-table functions.
	FuncCount int
	FuncKept  int

	// GPUSize is the .nv_fatbin section size; GPUSizeAfter its effective
	// size after compaction.
	GPUSize      int64
	GPUSizeAfter int64
	// ElemCount / ElemKept count fatbin elements.
	ElemCount int
	ElemKept  int
	// RemovedArchMismatch / RemovedNoUsedKernel split removed elements by
	// reason (Figure 7).
	RemovedArchMismatch int
	RemovedNoUsedKernel int

	// ResidentBytes / ResidentBytesAfter apply the page-granular
	// resident-size model (elfx.PageSize) before and after compaction —
	// computed analytically from the range set, never by scanning.
	ResidentBytes      int64
	ResidentBytesAfter int64

	// UsedFuncs / UsedKernels are what the profile attributed to this
	// library (inputs to the Table 4 Jaccard analysis).
	UsedFuncs   []string
	UsedKernels []string

	// Sparse is the compacted library as a zero-copy sparse image.
	Sparse *SparseImage
}

// Debloated materializes the compacted library image. Each call builds a
// fresh copy; callers that only need sizes should use the analytic report
// fields, and streaming callers should use Sparse.WriteTo.
func (r *LibraryReport) Debloated() []byte { return r.Sparse.Materialize() }

// RetainedBytes models the heap a cached report pins: the sparse range set
// plus the used-symbol lists (the shared original image is not charged).
func (r *LibraryReport) RetainedBytes() int64 {
	n := int64(256) // struct + slice headers
	if r.Sparse != nil {
		n += r.Sparse.RetainedBytes()
	}
	n += int64(len(r.Name))
	for _, s := range r.UsedFuncs {
		n += 16 + int64(len(s))
	}
	for _, s := range r.UsedKernels {
		n += 16 + int64(len(s))
	}
	return n
}

func pct(before, after int64) float64 {
	if before <= 0 {
		return 0
	}
	return 100 * float64(before-after) / float64(before)
}

// FileReductionPct is the effective file-size reduction percentage.
func (r *LibraryReport) FileReductionPct() float64 {
	return pct(r.FileEffective, r.FileEffectiveAfter)
}

// FileSavedBytes is the absolute effective file-size saving.
func (r *LibraryReport) FileSavedBytes() int64 {
	return r.FileEffective - r.FileEffectiveAfter
}

// CPUReductionPct is the CPU-code size reduction percentage.
func (r *LibraryReport) CPUReductionPct() float64 { return pct(r.CPUSize, r.CPUSizeAfter) }

// FuncReductionPct is the function-count reduction percentage.
func (r *LibraryReport) FuncReductionPct() float64 {
	return pct(int64(r.FuncCount), int64(r.FuncKept))
}

// GPUReductionPct is the GPU-code size reduction percentage.
func (r *LibraryReport) GPUReductionPct() float64 { return pct(r.GPUSize, r.GPUSizeAfter) }

// ElemReductionPct is the element-count reduction percentage.
func (r *LibraryReport) ElemReductionPct() float64 {
	return pct(int64(r.ElemCount), int64(r.ElemKept))
}

// HasGPU reports whether the library carries GPU code.
func (r *LibraryReport) HasGPU() bool { return r.GPUSize > 0 }
