package negativa

// LibraryReport captures the before/after state of one shared library.
// "Effective" sizes count non-zero bytes — the storage a zero-compacted
// file actually occupies (DESIGN.md: the compactor zeroes ranges in place
// to preserve addresses; sparse storage reclaims the zeroed blocks).
type LibraryReport struct {
	Name string

	// FileSize is the original file size in bytes.
	FileSize int64
	// FileEffective / FileEffectiveAfter are non-zero byte counts before
	// and after compaction.
	FileEffective      int64
	FileEffectiveAfter int64

	// CPUSize is the .text section size; CPUSizeAfter its effective size
	// after compaction.
	CPUSize      int64
	CPUSizeAfter int64
	// FuncCount / FuncKept count symbol-table functions.
	FuncCount int
	FuncKept  int

	// GPUSize is the .nv_fatbin section size; GPUSizeAfter its effective
	// size after compaction.
	GPUSize      int64
	GPUSizeAfter int64
	// ElemCount / ElemKept count fatbin elements.
	ElemCount int
	ElemKept  int
	// RemovedArchMismatch / RemovedNoUsedKernel split removed elements by
	// reason (Figure 7).
	RemovedArchMismatch int
	RemovedNoUsedKernel int

	// UsedFuncs / UsedKernels are what the profile attributed to this
	// library (inputs to the Table 4 Jaccard analysis).
	UsedFuncs   []string
	UsedKernels []string

	// Debloated is the compacted library image.
	Debloated []byte
}

func pct(before, after int64) float64 {
	if before <= 0 {
		return 0
	}
	return 100 * float64(before-after) / float64(before)
}

// FileReductionPct is the effective file-size reduction percentage.
func (r *LibraryReport) FileReductionPct() float64 {
	return pct(r.FileEffective, r.FileEffectiveAfter)
}

// FileSavedBytes is the absolute effective file-size saving.
func (r *LibraryReport) FileSavedBytes() int64 {
	return r.FileEffective - r.FileEffectiveAfter
}

// CPUReductionPct is the CPU-code size reduction percentage.
func (r *LibraryReport) CPUReductionPct() float64 { return pct(r.CPUSize, r.CPUSizeAfter) }

// FuncReductionPct is the function-count reduction percentage.
func (r *LibraryReport) FuncReductionPct() float64 {
	return pct(int64(r.FuncCount), int64(r.FuncKept))
}

// GPUReductionPct is the GPU-code size reduction percentage.
func (r *LibraryReport) GPUReductionPct() float64 { return pct(r.GPUSize, r.GPUSizeAfter) }

// ElemReductionPct is the element-count reduction percentage.
func (r *LibraryReport) ElemReductionPct() float64 {
	return pct(int64(r.ElemCount), int64(r.ElemKept))
}

// HasGPU reports whether the library carries GPU code.
func (r *LibraryReport) HasGPU() bool { return r.GPUSize > 0 }
