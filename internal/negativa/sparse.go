package negativa

import (
	"io"

	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
)

// SparseImage is a compacted library held as a reference to the original
// bytes plus the merged set of zeroed ranges, instead of a mutated copy.
// All size accounting (effective bytes, per-section effective bytes, the
// resident-size model) is computed analytically from the range set and the
// library's zero-byte prefix sum, and the byte-identical eager image is
// produced only on demand by Materialize or streamed by WriteTo.
//
// A SparseImage is immutable and safe for concurrent use; its memory cost
// is O(ranges), so caches can retain thousands of entries without pinning
// full library copies.
type SparseImage struct {
	lib *elfx.Library
	// zeroed is the merged, sorted, clamped set of ranges compaction
	// removes. Invariant: ranges are disjoint, non-empty, within
	// [0, len(lib.Data)).
	zeroed []fatbin.Range
}

// NewSparseImage builds a sparse image over lib with the given ranges
// zeroed (merged and clamped to the file).
func NewSparseImage(lib *elfx.Library, zeroed []fatbin.Range) *SparseImage {
	size := int64(len(lib.Data))
	clamped := make([]fatbin.Range, 0, len(zeroed))
	for _, r := range zeroed {
		if r.Start < 0 {
			r.Start = 0
		}
		if r.End > size {
			r.End = size
		}
		if r.Start < r.End {
			clamped = append(clamped, r)
		}
	}
	return &SparseImage{lib: lib, zeroed: elfx.MergeRanges(clamped)}
}

// Lib returns the original library the image references.
func (s *SparseImage) Lib() *elfx.Library { return s.lib }

// Len returns the image size in bytes (identical to the original file —
// compaction never changes offsets).
func (s *SparseImage) Len() int64 { return int64(len(s.lib.Data)) }

// ZeroedRanges returns the merged zeroed-range set. Read-only.
func (s *SparseImage) ZeroedRanges() []fatbin.Range { return s.zeroed }

// Materialize produces the eager compacted image: a copy of the original
// with every zeroed range cleared — byte-identical to what the in-place
// compactor used to return.
func (s *SparseImage) Materialize() []byte {
	out := make([]byte, len(s.lib.Data))
	copy(out, s.lib.Data)
	for _, r := range s.zeroed {
		clear(out[r.Start:r.End])
	}
	return out
}

// zeroChunk is the shared scratch written for zeroed ranges by WriteTo.
var zeroChunk [32 * 1024]byte

// WriteTo streams the compacted image without materializing it: original
// bytes for retained ranges, zeros for removed ones. It implements
// io.WriterTo, so HTTP handlers can serve debloated libraries with O(1)
// extra memory.
func (s *SparseImage) WriteTo(w io.Writer) (int64, error) {
	data := s.lib.Data
	var written int64
	cursor := int64(0)
	emit := func(b []byte) error {
		n, err := w.Write(b)
		written += int64(n)
		return err
	}
	for _, r := range s.zeroed {
		if r.Start > cursor {
			if err := emit(data[cursor:r.Start]); err != nil {
				return written, err
			}
		}
		for off := r.Start; off < r.End; off += int64(len(zeroChunk)) {
			n := r.End - off
			if n > int64(len(zeroChunk)) {
				n = int64(len(zeroChunk))
			}
			if err := emit(zeroChunk[:n]); err != nil {
				return written, err
			}
		}
		cursor = r.End
	}
	if cursor < int64(len(data)) {
		if err := emit(data[cursor:]); err != nil {
			return written, err
		}
	}
	return written, nil
}

// removedNonZeroIn returns the non-zero original bytes that compaction
// removes within r — the delta between the original's and the compacted
// image's effective size over r.
func (s *SparseImage) removedNonZeroIn(r fatbin.Range) int64 {
	idx := s.lib.Index()
	var n int64
	for _, z := range s.zeroed {
		if z.End <= r.Start {
			continue
		}
		if z.Start >= r.End {
			break
		}
		sec := fatbin.Range{Start: max(z.Start, r.Start), End: min(z.End, r.End)}
		n += idx.NonZeroBytesIn(sec)
	}
	return n
}

// NonZeroBytes returns the compacted image's effective (non-zero) size,
// computed analytically: original effective size minus live bytes covered
// by zeroed ranges. Equals elfx.NonZeroBytes(s.Materialize()).
func (s *SparseImage) NonZeroBytes() int64 {
	idx := s.lib.Index()
	return idx.NonZeroBytes() - s.removedNonZeroIn(fatbin.Range{Start: 0, End: s.Len()})
}

// NonZeroBytesIn returns the compacted image's effective size within r.
// Equals elfx.NonZeroBytesIn(s.Materialize(), r).
func (s *SparseImage) NonZeroBytesIn(r fatbin.Range) int64 {
	idx := s.lib.Index()
	return idx.NonZeroBytesIn(r) - s.removedNonZeroIn(r)
}

// ResidentBytes computes the resident-size model of the compacted image
// analytically: a page counts fully unless every byte in it is zero in the
// original or covered by a zeroed range. Equals
// elfx.ResidentBytes(s.Materialize()).
func (s *SparseImage) ResidentBytes() int64 {
	size := s.Len()
	idx := s.lib.Index()
	var n int64
	ri := 0
	for off := int64(0); off < size; off += elfx.PageSize {
		end := off + elfx.PageSize
		if end > size {
			end = size
		}
		live := idx.NonZeroBytesIn(fatbin.Range{Start: off, End: end})
		// Advance to the first range that could overlap this page, then
		// subtract removed live bytes; ranges are sorted so the cursor
		// only moves forward across pages.
		for ri < len(s.zeroed) && s.zeroed[ri].End <= off {
			ri++
		}
		for i := ri; i < len(s.zeroed) && s.zeroed[i].Start < end && live > 0; i++ {
			z := s.zeroed[i]
			live -= idx.NonZeroBytesIn(fatbin.Range{Start: max(z.Start, off), End: min(z.End, end)})
		}
		if live > 0 {
			n += end - off
		}
	}
	return n
}

// RetainedBytes models the heap the sparse representation itself pins
// beyond the shared original image: the range set plus fixed overhead.
// Byte-bounded caches charge entries with it.
func (s *SparseImage) RetainedBytes() int64 {
	return 48 + 16*int64(len(s.zeroed))
}

