package negativa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
)

// SparseImage is a compacted library held as a reference to the original
// bytes plus the merged set of zeroed ranges, instead of a mutated copy.
// All size accounting (effective bytes, per-section effective bytes, the
// resident-size model) is computed analytically from the range set and the
// library's zero-byte prefix sum, and the byte-identical eager image is
// produced only on demand by Materialize or streamed by WriteTo.
//
// A SparseImage is immutable and safe for concurrent use; its memory cost
// is O(ranges), so caches can retain thousands of entries without pinning
// full library copies.
type SparseImage struct {
	lib *elfx.Library
	// zeroed is the merged, sorted, clamped set of ranges compaction
	// removes. Invariant: ranges are disjoint, non-empty, within
	// [0, len(lib.Data)).
	zeroed []fatbin.Range
}

// NewSparseImage builds a sparse image over lib with the given ranges
// zeroed (merged and clamped to the file).
func NewSparseImage(lib *elfx.Library, zeroed []fatbin.Range) *SparseImage {
	size := int64(len(lib.Data))
	clamped := make([]fatbin.Range, 0, len(zeroed))
	for _, r := range zeroed {
		if r.Start < 0 {
			r.Start = 0
		}
		if r.End > size {
			r.End = size
		}
		if r.Start < r.End {
			clamped = append(clamped, r)
		}
	}
	return &SparseImage{lib: lib, zeroed: elfx.MergeRanges(clamped)}
}

// Lib returns the original library the image references.
func (s *SparseImage) Lib() *elfx.Library { return s.lib }

// Len returns the image size in bytes (identical to the original file —
// compaction never changes offsets).
func (s *SparseImage) Len() int64 { return int64(len(s.lib.Data)) }

// ZeroedRanges returns the merged zeroed-range set. Read-only.
func (s *SparseImage) ZeroedRanges() []fatbin.Range { return s.zeroed }

// Materialize produces the eager compacted image: a copy of the original
// with every zeroed range cleared — byte-identical to what the in-place
// compactor used to return.
func (s *SparseImage) Materialize() []byte {
	out := make([]byte, len(s.lib.Data))
	copy(out, s.lib.Data)
	for _, r := range s.zeroed {
		clear(out[r.Start:r.End])
	}
	return out
}

// MaterializeInto writes the eager compacted image into dst, which must be
// at least Len() bytes, and returns the filled prefix. It is Materialize
// with caller-owned memory, so hot paths (the verify clone, peer streaming)
// can recycle scratch buffers via bufpool instead of allocating a full
// library copy per call.
func (s *SparseImage) MaterializeInto(dst []byte) []byte {
	if int64(len(dst)) < s.Len() {
		panic("negativa: MaterializeInto: dst smaller than image")
	}
	n := copy(dst, s.lib.Data)
	out := dst[:n]
	for _, r := range s.zeroed {
		clear(out[r.Start:r.End])
	}
	return out
}

// zeroChunk is the shared scratch written for zeroed ranges by WriteTo.
var zeroChunk [32 * 1024]byte

// WriteTo streams the compacted image without materializing it: original
// bytes for retained ranges, zeros for removed ones. It implements
// io.WriterTo, so HTTP handlers can serve debloated libraries with O(1)
// extra memory.
func (s *SparseImage) WriteTo(w io.Writer) (int64, error) {
	data := s.lib.Data
	var written int64
	cursor := int64(0)
	emit := func(b []byte) error {
		n, err := w.Write(b)
		written += int64(n)
		return err
	}
	for _, r := range s.zeroed {
		if r.Start > cursor {
			if err := emit(data[cursor:r.Start]); err != nil {
				return written, err
			}
		}
		for off := r.Start; off < r.End; off += int64(len(zeroChunk)) {
			n := r.End - off
			if n > int64(len(zeroChunk)) {
				n = int64(len(zeroChunk))
			}
			if err := emit(zeroChunk[:n]); err != nil {
				return written, err
			}
		}
		cursor = r.End
	}
	if cursor < int64(len(data)) {
		if err := emit(data[cursor:]); err != nil {
			return written, err
		}
	}
	return written, nil
}

// removedNonZeroIn returns the non-zero original bytes that compaction
// removes within r — the delta between the original's and the compacted
// image's effective size over r.
func (s *SparseImage) removedNonZeroIn(r fatbin.Range) int64 {
	idx := s.lib.Index()
	var n int64
	for _, z := range s.zeroed {
		if z.End <= r.Start {
			continue
		}
		if z.Start >= r.End {
			break
		}
		sec := fatbin.Range{Start: max(z.Start, r.Start), End: min(z.End, r.End)}
		n += idx.NonZeroBytesIn(sec)
	}
	return n
}

// NonZeroBytes returns the compacted image's effective (non-zero) size,
// computed analytically: original effective size minus live bytes covered
// by zeroed ranges. Equals elfx.NonZeroBytes(s.Materialize()).
func (s *SparseImage) NonZeroBytes() int64 {
	idx := s.lib.Index()
	return idx.NonZeroBytes() - s.removedNonZeroIn(fatbin.Range{Start: 0, End: s.Len()})
}

// NonZeroBytesIn returns the compacted image's effective size within r.
// Equals elfx.NonZeroBytesIn(s.Materialize(), r).
func (s *SparseImage) NonZeroBytesIn(r fatbin.Range) int64 {
	idx := s.lib.Index()
	return idx.NonZeroBytesIn(r) - s.removedNonZeroIn(r)
}

// ResidentBytes computes the resident-size model of the compacted image
// analytically: a page counts fully unless every byte in it is zero in the
// original or covered by a zeroed range. Equals
// elfx.ResidentBytes(s.Materialize()).
func (s *SparseImage) ResidentBytes() int64 {
	size := s.Len()
	idx := s.lib.Index()
	var n int64
	ri := 0
	for off := int64(0); off < size; off += elfx.PageSize {
		end := off + elfx.PageSize
		if end > size {
			end = size
		}
		live := idx.NonZeroBytesIn(fatbin.Range{Start: off, End: end})
		// Advance to the first range that could overlap this page, then
		// subtract removed live bytes; ranges are sorted so the cursor
		// only moves forward across pages.
		for ri < len(s.zeroed) && s.zeroed[ri].End <= off {
			ri++
		}
		for i := ri; i < len(s.zeroed) && s.zeroed[i].Start < end && live > 0; i++ {
			z := s.zeroed[i]
			live -= idx.NonZeroBytesIn(fatbin.Range{Start: max(z.Start, off), End: min(z.End, end)})
		}
		if live > 0 {
			n += end - off
		}
	}
	return n
}

// RetainedBytes models the heap the sparse representation itself pins
// beyond the shared original image: the range set plus fixed overhead.
// Byte-bounded caches charge entries with it.
func (s *SparseImage) RetainedBytes() int64 {
	return 48 + 16*int64(len(s.zeroed))
}

// Sparse-image binary encoding: a versioned header binding the range set to
// the exact library image it compacts, followed by the ranges.
//
//	magic     u32  ("NSP1")
//	version   u16
//	flags     u16  (reserved, zero)
//	libSize   u64  size of the library image the ranges apply to
//	libDigest [32] SHA-256 of that image
//	nRanges   u32
//	ranges    (start u64, end u64) × nRanges, sorted, disjoint, non-empty
//
// The digest makes a persisted range set self-checking: Decode refuses to
// marry ranges to any library other than the one they were computed for, so
// a content-addressed store can hold sparse images as O(ranges) objects and
// reconstruct byte-identical compacted libraries on demand.
const (
	sparseMagic      uint32 = 0x3150534e // "NSP1" little-endian
	sparseVersion    uint16 = 1
	sparseHeaderSize        = 52
)

// Encode serializes the sparse image's range set with a version header
// binding it to the library's content digest.
func (s *SparseImage) Encode() []byte {
	le := binary.LittleEndian
	buf := make([]byte, sparseHeaderSize+16*len(s.zeroed))
	le.PutUint32(buf[0:], sparseMagic)
	le.PutUint16(buf[4:], sparseVersion)
	le.PutUint64(buf[8:], uint64(len(s.lib.Data)))
	d := s.lib.ContentDigest()
	copy(buf[16:48], d[:])
	le.PutUint32(buf[48:], uint32(len(s.zeroed)))
	off := sparseHeaderSize
	for _, r := range s.zeroed {
		le.PutUint64(buf[off:], uint64(r.Start))
		le.PutUint64(buf[off+8:], uint64(r.End))
		off += 16
	}
	return buf
}

// DecodeSparseImage reconstructs a sparse image over lib from an encoded
// range set, accepting either codec version by magic: the fixed-width v1
// encoding (persisted objects) or the compact delta/varint v2 wire codec
// (negotiated peer responses). Corrupt input — bad magic or version, a
// digest or size that does not match lib, truncation, or ranges that are
// unsorted, overlapping, empty, or out of bounds — is rejected with an
// error, never a panic: the decoder is a fuzz target and persisted bytes
// are untrusted.
func DecodeSparseImage(lib *elfx.Library, data []byte) (*SparseImage, error) {
	le := binary.LittleEndian
	if len(data) < 4 {
		return nil, fmt.Errorf("negativa: sparse image: truncated header (%d bytes)", len(data))
	}
	if m := le.Uint32(data[0:]); m != sparseMagic {
		if m == sparseMagicV2 {
			return decodeWireV2(lib, data)
		}
		return nil, fmt.Errorf("negativa: sparse image: bad magic %#x", m)
	}
	if len(data) < sparseHeaderSize {
		return nil, fmt.Errorf("negativa: sparse image: truncated header (%d bytes)", len(data))
	}
	if v := le.Uint16(data[4:]); v != sparseVersion {
		return nil, fmt.Errorf("negativa: sparse image: unsupported version %d", v)
	}
	size := int64(len(lib.Data))
	if enc := le.Uint64(data[8:]); enc != uint64(size) {
		return nil, fmt.Errorf("negativa: sparse image: encoded for a %d-byte image, library is %d bytes", enc, size)
	}
	d := lib.ContentDigest()
	if !bytes.Equal(data[16:48], d[:]) {
		return nil, fmt.Errorf("negativa: sparse image: library digest mismatch")
	}
	n := le.Uint32(data[48:])
	if int64(len(data)-sparseHeaderSize) != 16*int64(n) {
		return nil, fmt.Errorf("negativa: sparse image: %d ranges declared, %d bytes of ranges present", n, len(data)-sparseHeaderSize)
	}
	zeroed := make([]fatbin.Range, 0, n)
	prevEnd := int64(0)
	off := sparseHeaderSize
	for i := uint32(0); i < n; i++ {
		start := int64(le.Uint64(data[off:]))
		end := int64(le.Uint64(data[off+8:]))
		off += 16
		// The canonical form Encode emits: sorted, disjoint (merged, so
		// gaps of ≥1 byte between ranges), non-empty, in bounds. Anything
		// else is corruption.
		if start < prevEnd || end <= start || end > size {
			return nil, fmt.Errorf("negativa: sparse image: range %d [%d, %d) malformed", i, start, end)
		}
		zeroed = append(zeroed, fatbin.Range{Start: start, End: end})
		prevEnd = end
	}
	return &SparseImage{lib: lib, zeroed: zeroed}, nil
}
