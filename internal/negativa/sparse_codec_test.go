package negativa

import (
	"bytes"
	"math/rand"
	"testing"

	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/mlframework"
)

// codecLib builds one real generated library to round-trip range sets over.
func codecLib(t testing.TB) *elfx.Library {
	t.Helper()
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	return in.Library(in.LibNames[0])
}

func TestSparseEncodeDecodeRoundTrip(t *testing.T) {
	lib := codecLib(t)
	funcs, kernels, archs := usedSubsets(lib)
	cpu := LocateCPU(lib, funcs)
	gpu, err := LocateGPU(lib, kernels, archs)
	if err != nil {
		t.Fatal(err)
	}
	sparse := Compact(lib, cpu, gpu)

	decoded, err := DecodeSparseImage(lib, sparse.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded.Materialize(), sparse.Materialize()) {
		t.Fatal("decoded image is not byte-identical")
	}
	if decoded.ResidentBytes() != sparse.ResidentBytes() {
		t.Fatalf("ResidentBytes drifted: %d vs %d", decoded.ResidentBytes(), sparse.ResidentBytes())
	}
}

// TestSparseCodecProperty is the round-trip property over random range
// sets: for any input ranges (overlapping, unclamped, unsorted),
// Encode→Decode→Materialize equals the eager image of the original sparse
// view, and every analytic size survives the trip unchanged.
func TestSparseCodecProperty(t *testing.T) {
	lib := codecLib(t)
	size := int64(len(lib.Data))
	rng := rand.New(rand.NewSource(7))

	for trial := 0; trial < 200; trial++ {
		nRanges := rng.Intn(40)
		raw := make([]fatbin.Range, 0, nRanges)
		for i := 0; i < nRanges; i++ {
			// Deliberately hostile inputs: negative starts, ends past the
			// file, empty and inverted ranges — NewSparseImage clamps and
			// merges them into canonical form before Encode sees them.
			start := rng.Int63n(size+100) - 50
			raw = append(raw, fatbin.Range{Start: start, End: start + rng.Int63n(size/4+1) - 8})
		}
		sparse := NewSparseImage(lib, raw)

		decoded, err := DecodeSparseImage(lib, sparse.Encode())
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		eager := sparse.Materialize()
		if !bytes.Equal(decoded.Materialize(), eager) {
			t.Fatalf("trial %d: materialized image differs after round-trip", trial)
		}
		if got, want := decoded.ResidentBytes(), sparse.ResidentBytes(); got != want {
			t.Fatalf("trial %d: ResidentBytes %d != %d", trial, got, want)
		}
		if got, want := decoded.ResidentBytes(), elfx.ResidentBytes(eager); got != want {
			t.Fatalf("trial %d: analytic ResidentBytes %d != eager scan %d", trial, got, want)
		}
		if got, want := decoded.NonZeroBytes(), elfx.NonZeroBytes(eager); got != want {
			t.Fatalf("trial %d: NonZeroBytes %d != eager scan %d", trial, got, want)
		}
		var buf bytes.Buffer
		if _, err := decoded.WriteTo(&buf); err != nil || !bytes.Equal(buf.Bytes(), eager) {
			t.Fatalf("trial %d: streamed image differs after round-trip (%v)", trial, err)
		}
	}
}

func TestSparseDecodeRejectsCorruption(t *testing.T) {
	lib := codecLib(t)
	sparse := NewSparseImage(lib, []fatbin.Range{{Start: 64, End: 4096}, {Start: 8192, End: 9000}})
	good := sparse.Encode()
	if _, err := DecodeSparseImage(lib, good); err != nil {
		t.Fatal(err)
	}

	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:sparseHeaderSize-1],
		"bad magic":        corrupt(func(b []byte) { b[0] ^= 0xff }),
		"bad version":      corrupt(func(b []byte) { b[4] = 99 }),
		"wrong size":       corrupt(func(b []byte) { b[8] ^= 0x01 }),
		"wrong digest":     corrupt(func(b []byte) { b[20] ^= 0x01 }),
		"truncated ranges": good[:len(good)-8],
		"trailing bytes":   append(append([]byte(nil), good...), 0),
		"count mismatch":   corrupt(func(b []byte) { b[48]++ }),
		"inverted range":   corrupt(func(b []byte) { copy(b[sparseHeaderSize:], []byte{255, 255}) }),
		"overlap": corrupt(func(b []byte) {
			copy(b[sparseHeaderSize+16:sparseHeaderSize+24], b[sparseHeaderSize:sparseHeaderSize+8])
		}),
	}
	for name, data := range cases {
		if _, err := DecodeSparseImage(lib, data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}

	// A range set is bound to its exact library: decoding against another
	// library must fail on the digest, not produce a plausible image.
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.TensorFlow, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSparseImage(in.Library(in.LibNames[0]), good); err == nil {
		t.Error("decode accepted a range set for a different library")
	}
}

// FuzzDecodeSparseImage hammers the decoder with mutated encodings: it must
// reject corrupt input with an error and never panic, and anything it does
// accept must materialize without faulting.
func FuzzDecodeSparseImage(f *testing.F) {
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 1})
	if err != nil {
		f.Fatal(err)
	}
	lib := in.Library(in.LibNames[0])
	f.Add(NewSparseImage(lib, []fatbin.Range{{Start: 100, End: 2000}}).Encode())
	f.Add(NewSparseImage(lib, nil).Encode())
	funcs, kernels, archs := usedSubsets(lib)
	gpu, err := LocateGPU(lib, kernels, archs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(Compact(lib, LocateCPU(lib, funcs), gpu).Encode())
	f.Add([]byte{})
	f.Add([]byte("NSP1 but not really"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSparseImage(lib, data)
		if err != nil {
			return
		}
		// Accepted input must be fully usable.
		img := s.Materialize()
		if int64(len(img)) != s.Len() {
			t.Fatalf("materialized %d bytes, image length %d", len(img), s.Len())
		}
		if s.ResidentBytes() != elfx.ResidentBytes(img) {
			t.Fatal("analytic resident size diverged on accepted input")
		}
	})
}
