package negativa

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"negativaml/internal/cubin"
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
	"negativaml/internal/mlframework"
)

// eagerCompact is the pre-sparse compactor (copy, then zero in place) kept
// as the reference the SparseImage must reproduce byte for byte.
func eagerCompact(lib *elfx.Library, cpu *CPULocation, gpu *GPULocation) []byte {
	out := make([]byte, len(lib.Data))
	copy(out, lib.Data)
	if text := lib.Section(".text"); text != nil && cpu != nil {
		elfx.ZeroOutside(out, text.Range, cpu.Keep)
	}
	if gpu != nil {
		for _, d := range gpu.Decisions {
			if d.Reason != Kept {
				elfx.ZeroRange(out, d.PayloadRange)
			}
		}
	}
	return out
}

// usedSubsets derives deterministic used-function and used-kernel subsets
// for a library: every third symbol-table function, and every second entry
// kernel of every parseable cubin.
func usedSubsets(lib *elfx.Library) (funcs, kernels []string, archs []gpuarch.SM) {
	for i := range lib.Funcs {
		if i%3 == 0 {
			funcs = append(funcs, lib.Funcs[i].Name)
		}
	}
	archSeen := map[gpuarch.SM]bool{}
	fb, has, err := lib.Fatbin()
	if err != nil || !has {
		return funcs, nil, nil
	}
	for _, e := range fb.Elements() {
		if !archSeen[e.Arch] && len(archSeen) < 2 {
			archSeen[e.Arch] = true
			archs = append(archs, e.Arch)
		}
		if e.Kind != fatbin.KindCubin || !cubin.IsCubin(e.Payload) {
			continue
		}
		cb, err := cubin.Parse(e.Payload)
		if err != nil {
			continue
		}
		entries := cb.EntryKernels()
		for i := 0; i < len(entries); i += 2 {
			kernels = append(kernels, entries[i])
		}
	}
	sort.Strings(funcs)
	sort.Strings(kernels)
	return funcs, kernels, archs
}

// checkEquivalence asserts the sparse image matches the eager reference and
// that every analytic quantity equals its scanned counterpart.
func checkEquivalence(t *testing.T, label string, lib *elfx.Library, funcs, kernels []string, archs []gpuarch.SM) {
	t.Helper()
	cpuLoc := LocateCPU(lib, funcs)
	gpuLoc, err := LocateGPU(lib, kernels, archs)
	if err != nil {
		t.Fatalf("%s: LocateGPU: %v", label, err)
	}
	sparse := Compact(lib, cpuLoc, gpuLoc)
	eager := eagerCompact(lib, cpuLoc, gpuLoc)

	got := sparse.Materialize()
	if !bytes.Equal(got, eager) {
		t.Fatalf("%s: Materialize() diverges from eager compaction", label)
	}
	var streamed bytes.Buffer
	if _, err := sparse.WriteTo(&streamed); err != nil {
		t.Fatalf("%s: WriteTo: %v", label, err)
	}
	if !bytes.Equal(streamed.Bytes(), eager) {
		t.Fatalf("%s: WriteTo stream diverges from eager compaction", label)
	}

	if got, want := sparse.NonZeroBytes(), elfx.NonZeroBytes(eager); got != want {
		t.Fatalf("%s: analytic NonZeroBytes = %d, scanned %d", label, got, want)
	}
	if got, want := sparse.ResidentBytes(), elfx.ResidentBytes(eager); got != want {
		t.Fatalf("%s: analytic ResidentBytes = %d, scanned %d", label, got, want)
	}
	if text := lib.Section(".text"); text != nil {
		if got, want := sparse.NonZeroBytesIn(text.Range), elfx.NonZeroBytesIn(eager, text.Range); got != want {
			t.Fatalf("%s: analytic .text effective = %d, scanned %d", label, got, want)
		}
	}
	if fbRange, ok := lib.FatbinRange(); ok {
		if got, want := sparse.NonZeroBytesIn(fbRange), elfx.NonZeroBytesIn(eager, fbRange); got != want {
			t.Fatalf("%s: analytic fatbin effective = %d, scanned %d", label, got, want)
		}
	}

	// The report assembled from the same locations must carry the analytic
	// values, equal to scanning the eager output.
	ld, err := LocateAndCompactLib(lib, funcs, kernels, archs)
	if err != nil {
		t.Fatalf("%s: LocateAndCompactLib: %v", label, err)
	}
	lr := ld.Report
	if lr.FileEffectiveAfter != elfx.NonZeroBytes(eager) {
		t.Fatalf("%s: FileEffectiveAfter = %d, scanned %d", label, lr.FileEffectiveAfter, elfx.NonZeroBytes(eager))
	}
	if lr.ResidentBytesAfter != elfx.ResidentBytes(eager) {
		t.Fatalf("%s: ResidentBytesAfter = %d, scanned %d", label, lr.ResidentBytesAfter, elfx.ResidentBytes(eager))
	}
	if lr.ResidentBytes != elfx.ResidentBytes(lib.Data) {
		t.Fatalf("%s: ResidentBytes = %d, scanned %d", label, lr.ResidentBytes, elfx.ResidentBytes(lib.Data))
	}
	if !bytes.Equal(lr.Debloated(), eager) {
		t.Fatalf("%s: report.Debloated() diverges from eager compaction", label)
	}
}

// TestSparseMatchesEagerAcrossFrameworks is the property-style equivalence
// sweep: for every library of every generated framework install, sparse
// materialization must be byte-identical to eager compaction and the
// analytic accounting equal to scanned values.
func TestSparseMatchesEagerAcrossFrameworks(t *testing.T) {
	frameworks := []string{
		mlframework.PyTorch, mlframework.TensorFlow,
		mlframework.VLLM, mlframework.HFTransformers,
	}
	for _, fw := range frameworks {
		in, err := mlframework.Generate(mlframework.Config{Framework: fw, TailLibs: 6})
		if err != nil {
			t.Fatalf("%s: %v", fw, err)
		}
		for _, name := range in.LibNames {
			lib := in.Library(name)
			funcs, kernels, archs := usedSubsets(lib)
			checkEquivalence(t, fw+"/"+name, lib, funcs, kernels, archs)
			// Empty used sets (nothing retained) and nil locations.
			checkEquivalence(t, fw+"/"+name+"/empty", lib, nil, nil, archs)
		}
	}
}

// TestSparseMatchesEagerOnRedebloat re-debloats an already compacted
// library: zeroed elements fail the cubin magic probe and must be handled
// identically by the index-backed locator and the sparse compactor.
func TestSparseMatchesEagerOnRedebloat(t *testing.T) {
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range in.LibNames {
		lib := in.Library(name)
		funcs, kernels, archs := usedSubsets(lib)
		ld, err := LocateAndCompactLib(lib, funcs, kernels, archs)
		if err != nil {
			t.Fatal(err)
		}
		once, err := elfx.Parse(name, ld.Report.Debloated())
		if err != nil {
			t.Fatalf("%s: compacted library no longer parses: %v", name, err)
		}
		checkEquivalence(t, name+"/re-debloat", once, funcs, kernels, archs)
	}
}

// TestSparseMatchesEagerOnCorruption mirrors the elfx corruption fixtures:
// randomly flipped bytes must either fail both pipelines identically or
// produce equivalent sparse/eager output.
func TestSparseMatchesEagerOnCorruption(t *testing.T) {
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 0})
	if err != nil {
		t.Fatal(err)
	}
	base := in.Library(in.LibNames[0])
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		data := append([]byte(nil), base.Data...)
		for n := 0; n < 1+r.Intn(8); n++ {
			data[r.Intn(len(data))] ^= byte(1 + r.Intn(255))
		}
		lib, err := elfx.Parse(base.Name, data)
		if err != nil {
			continue // rejected corruption cannot reach compaction
		}
		funcs, kernels, archs := usedSubsets(lib)
		cpuLoc := LocateCPU(lib, funcs)
		gpuLoc, gpuErr := LocateGPU(lib, kernels, archs)
		if gpuErr != nil {
			continue // the locator rejected the fatbin; nothing to compare
		}
		if !bytes.Equal(Compact(lib, cpuLoc, gpuLoc).Materialize(), eagerCompact(lib, cpuLoc, gpuLoc)) {
			t.Fatalf("trial %d: sparse and eager compaction diverge on corrupted input", trial)
		}
	}
}

// TestZeroedElementFixture plants a hand-zeroed element (the
// corruption-test family of fixtures) and checks the locator's decision and
// the analytic accounting around it.
func TestZeroedElementFixture(t *testing.T) {
	cb := cubin.New(gpuarch.SM75)
	cb.AddKernel(cubin.Kernel{Name: "k_live", Code: bytes.Repeat([]byte{7}, 40), Flags: cubin.FlagEntry})
	blob, err := cb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fb := &fatbin.FatBin{}
	reg := fb.AddRegion()
	reg.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: gpuarch.SM75, Payload: blob})
	reg.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: gpuarch.SM75, Payload: make([]byte, len(blob))}) // zeroed payload
	sec, err := fb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b := elfx.NewBuilder("libz.so")
	b.AddFunction("f", 64)
	b.SetFatbin(sec)
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := elfx.Parse("libz.so", data)
	if err != nil {
		t.Fatal(err)
	}
	gpuLoc, err := LocateGPU(lib, []string{"k_live"}, []gpuarch.SM{gpuarch.SM75})
	if err != nil {
		t.Fatal(err)
	}
	if len(gpuLoc.Decisions) != 2 || gpuLoc.Decisions[0].Reason != Kept || gpuLoc.Decisions[1].Reason != ReasonNoUsedKernel {
		t.Fatalf("decisions = %+v, want kept + no-used-kernel", gpuLoc.Decisions)
	}
	checkEquivalence(t, "zeroed-element", lib, []string{"f"}, []string{"k_live"}, []gpuarch.SM{gpuarch.SM75})
}
