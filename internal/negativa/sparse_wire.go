package negativa

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
)

// Compact sparse wire codec (version 2): the same digest-bound range set as
// the v1 encoding, with the fixed 16-byte-per-range table replaced by
// delta/varint coding. Zeroed ranges are sorted and disjoint, so each is
// fully determined by its gap from the previous range's end and its
// length — two uvarints, typically 2–6 bytes against v1's fixed 16.
//
//	magic     u32  ("NSP2")
//	version   u16  (2)
//	flags     u16  (reserved, zero)
//	libSize   u64  size of the library image the ranges apply to
//	libDigest [32] SHA-256 of that image
//	nRanges   uvarint
//	ranges    (gap uvarint, length uvarint) × nRanges
//	               gap    = start − previous range's end (≥ 0)
//	               length = end − start (≥ 1)
//
// v2 is a wire format: peers negotiate it per request (see the dserve peer
// protocol) and DecodeSparseImage accepts either version by magic, so
// mixed-version clusters interoperate — an old node simply never sees v2
// bytes, and a new node decodes whatever arrives. Persisted objects stay
// canonical v1.
const (
	sparseMagicV2   uint32 = 0x3250534e // "NSP2" little-endian
	sparseVersionV2 uint16 = 2
	// sparseWirePrefix is the fixed part of the v2 header, before the
	// varint range table; identical layout to the v1 header.
	sparseWirePrefix = 48
)

// EncodeWire serializes the sparse image in the compact v2 wire codec.
func (s *SparseImage) EncodeWire() []byte {
	buf := make([]byte, sparseWirePrefix, sparseWirePrefix+binary.MaxVarintLen32+2*binary.MaxVarintLen64*len(s.zeroed))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], sparseMagicV2)
	le.PutUint16(buf[4:], sparseVersionV2)
	le.PutUint64(buf[8:], uint64(len(s.lib.Data)))
	d := s.lib.ContentDigest()
	copy(buf[16:48], d[:])
	buf = binary.AppendUvarint(buf, uint64(len(s.zeroed)))
	prevEnd := int64(0)
	for _, r := range s.zeroed {
		buf = binary.AppendUvarint(buf, uint64(r.Start-prevEnd))
		buf = binary.AppendUvarint(buf, uint64(r.End-r.Start))
		prevEnd = r.End
	}
	return buf
}

// decodeWireV2 validates and decodes a v2 frame against lib. Same contract
// as the v1 path of DecodeSparseImage: corrupt input — truncation, digest
// or size mismatch, malformed varints, ranges that leave the canonical
// form, trailing bytes — returns an error, never panics.
func decodeWireV2(lib *elfx.Library, data []byte) (*SparseImage, error) {
	le := binary.LittleEndian
	if len(data) < sparseWirePrefix {
		return nil, fmt.Errorf("negativa: sparse wire: truncated header (%d bytes)", len(data))
	}
	if v := le.Uint16(data[4:]); v != sparseVersionV2 {
		return nil, fmt.Errorf("negativa: sparse wire: unsupported version %d", v)
	}
	if fl := le.Uint16(data[6:]); fl != 0 {
		return nil, fmt.Errorf("negativa: sparse wire: reserved flags %#x set", fl)
	}
	size := int64(len(lib.Data))
	if enc := le.Uint64(data[8:]); enc != uint64(size) {
		return nil, fmt.Errorf("negativa: sparse wire: encoded for a %d-byte image, library is %d bytes", enc, size)
	}
	d := lib.ContentDigest()
	if !bytes.Equal(data[16:48], d[:]) {
		return nil, fmt.Errorf("negativa: sparse wire: library digest mismatch")
	}
	zeroed, err := decodeWireRanges(data[sparseWirePrefix:], size)
	if err != nil {
		return nil, err
	}
	return &SparseImage{lib: lib, zeroed: zeroed}, nil
}

// uvarint is binary.Uvarint with canonical-form enforcement: an encoding
// padded with trailing zero continuation groups (a longer spelling of the
// same value) is rejected as malformed, so every value has exactly one
// accepted byte sequence and accepted frames re-encode byte-identically.
func uvarint(b []byte) (uint64, int) {
	v, w := binary.Uvarint(b)
	if w > 1 && b[w-1] == 0 {
		return 0, 0
	}
	return v, w
}

// decodeWireRanges decodes the uvarint range table of a v2 frame into the
// canonical range set for an image of the given size.
func decodeWireRanges(tab []byte, size int64) ([]fatbin.Range, error) {
	n, off := uvarint(tab)
	if off <= 0 {
		return nil, fmt.Errorf("negativa: sparse wire: malformed range count")
	}
	// Each range needs at least two varint bytes: an honest count can
	// never exceed half the remaining table, so a hostile count cannot
	// provision an absurd slice.
	if n > uint64(len(tab)-off)/2 {
		return nil, fmt.Errorf("negativa: sparse wire: %d ranges declared, %d bytes of table present", n, len(tab)-off)
	}
	zeroed := make([]fatbin.Range, 0, n)
	prevEnd := int64(0)
	for i := uint64(0); i < n; i++ {
		gap, w := uvarint(tab[off:])
		if w <= 0 {
			return nil, fmt.Errorf("negativa: sparse wire: range %d: malformed gap varint", i)
		}
		off += w
		length, w := uvarint(tab[off:])
		if w <= 0 {
			return nil, fmt.Errorf("negativa: sparse wire: range %d: malformed length varint", i)
		}
		off += w
		// Bounds in uint64 space first so hostile values cannot overflow
		// the int64 arithmetic below.
		if length == 0 || gap > uint64(size-prevEnd) || length > uint64(size-prevEnd)-gap {
			return nil, fmt.Errorf("negativa: sparse wire: range %d out of bounds", i)
		}
		start := prevEnd + int64(gap)
		end := start + int64(length)
		zeroed = append(zeroed, fatbin.Range{Start: start, End: end})
		prevEnd = end
	}
	if off != len(tab) {
		return nil, fmt.Errorf("negativa: sparse wire: %d trailing bytes after range table", len(tab)-off)
	}
	return zeroed, nil
}

// SparseWireVersion reports the codec version of an encoded sparse image
// (1 or 2) by magic, or 0 for bytes that are neither.
func SparseWireVersion(data []byte) int {
	if len(data) < 4 {
		return 0
	}
	switch binary.LittleEndian.Uint32(data) {
	case sparseMagic:
		return 1
	case sparseMagicV2:
		return 2
	}
	return 0
}

// TranscodeSparseWire re-encodes an encoded sparse image into the
// requested codec version (1 or 2) without needing the library: both
// codecs carry the image size and digest, so the range set re-frames
// byte-for-byte. Transcoding validates the input as strictly as decoding —
// the result is canonical or the call fails. Already-right-version input
// is returned unchanged (no copy).
func TranscodeSparseWire(data []byte, toVersion int) ([]byte, error) {
	from := SparseWireVersion(data)
	if from == 0 {
		return nil, fmt.Errorf("negativa: sparse wire: unrecognized encoding")
	}
	if toVersion != 1 && toVersion != 2 {
		return nil, fmt.Errorf("negativa: sparse wire: unknown target version %d", toVersion)
	}
	size, digest, zeroed, err := decodeWireAny(data)
	if err != nil {
		return nil, err
	}
	if from == toVersion {
		return data, nil
	}
	le := binary.LittleEndian
	if toVersion == 2 {
		buf := make([]byte, sparseWirePrefix, sparseWirePrefix+binary.MaxVarintLen32+2*binary.MaxVarintLen64*len(zeroed))
		le.PutUint32(buf[0:], sparseMagicV2)
		le.PutUint16(buf[4:], sparseVersionV2)
		le.PutUint64(buf[8:], size)
		copy(buf[16:48], digest)
		buf = binary.AppendUvarint(buf, uint64(len(zeroed)))
		prevEnd := int64(0)
		for _, r := range zeroed {
			buf = binary.AppendUvarint(buf, uint64(r.Start-prevEnd))
			buf = binary.AppendUvarint(buf, uint64(r.End-r.Start))
			prevEnd = r.End
		}
		return buf, nil
	}
	buf := make([]byte, sparseHeaderSize+16*len(zeroed))
	le.PutUint32(buf[0:], sparseMagic)
	le.PutUint16(buf[4:], sparseVersion)
	le.PutUint64(buf[8:], size)
	copy(buf[16:48], digest)
	le.PutUint32(buf[48:], uint32(len(zeroed)))
	off := sparseHeaderSize
	for _, r := range zeroed {
		le.PutUint64(buf[off:], uint64(r.Start))
		le.PutUint64(buf[off+8:], uint64(r.End))
		off += 16
	}
	return buf, nil
}

// decodeWireAny decodes either codec version's frame without a library,
// validating structure against the encoded image size (the digest is
// passed through — it binds at DecodeSparseImage time).
func decodeWireAny(data []byte) (size uint64, digest []byte, zeroed []fatbin.Range, err error) {
	le := binary.LittleEndian
	if len(data) < sparseWirePrefix {
		return 0, nil, nil, fmt.Errorf("negativa: sparse wire: truncated header (%d bytes)", len(data))
	}
	size = le.Uint64(data[8:])
	if size > 1<<62 {
		return 0, nil, nil, fmt.Errorf("negativa: sparse wire: implausible image size %d", size)
	}
	if fl := le.Uint16(data[6:]); fl != 0 {
		return 0, nil, nil, fmt.Errorf("negativa: sparse wire: reserved flags %#x set", fl)
	}
	digest = data[16:48]
	switch le.Uint32(data) {
	case sparseMagic:
		if v := le.Uint16(data[4:]); v != sparseVersion {
			return 0, nil, nil, fmt.Errorf("negativa: sparse wire: unsupported version %d", v)
		}
		if len(data) < sparseHeaderSize {
			return 0, nil, nil, fmt.Errorf("negativa: sparse wire: truncated header (%d bytes)", len(data))
		}
		n := le.Uint32(data[48:])
		if int64(len(data)-sparseHeaderSize) != 16*int64(n) {
			return 0, nil, nil, fmt.Errorf("negativa: sparse wire: %d ranges declared, %d bytes of ranges present", n, len(data)-sparseHeaderSize)
		}
		zeroed = make([]fatbin.Range, 0, n)
		prevEnd := int64(0)
		off := sparseHeaderSize
		for i := uint32(0); i < n; i++ {
			start := int64(le.Uint64(data[off:]))
			end := int64(le.Uint64(data[off+8:]))
			off += 16
			if start < prevEnd || end <= start || uint64(end) > size {
				return 0, nil, nil, fmt.Errorf("negativa: sparse wire: range %d [%d, %d) malformed", i, start, end)
			}
			zeroed = append(zeroed, fatbin.Range{Start: start, End: end})
			prevEnd = end
		}
		return size, digest, zeroed, nil
	case sparseMagicV2:
		if v := le.Uint16(data[4:]); v != sparseVersionV2 {
			return 0, nil, nil, fmt.Errorf("negativa: sparse wire: unsupported version %d", v)
		}
		zeroed, err = decodeWireRanges(data[sparseWirePrefix:], int64(size))
		if err != nil {
			return 0, nil, nil, err
		}
		return size, digest, zeroed, nil
	}
	return 0, nil, nil, fmt.Errorf("negativa: sparse wire: unrecognized encoding")
}
