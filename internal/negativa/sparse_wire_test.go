package negativa

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"negativaml/internal/fatbin"
	"negativaml/internal/mlframework"
)

func TestSparseWireRoundTrip(t *testing.T) {
	lib := codecLib(t)
	funcs, kernels, archs := usedSubsets(lib)
	gpu, err := LocateGPU(lib, kernels, archs)
	if err != nil {
		t.Fatal(err)
	}
	sparse := Compact(lib, LocateCPU(lib, funcs), gpu)

	wire := sparse.EncodeWire()
	if got := SparseWireVersion(wire); got != 2 {
		t.Fatalf("SparseWireVersion(EncodeWire) = %d, want 2", got)
	}
	decoded, err := DecodeSparseImage(lib, wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded.Materialize(), sparse.Materialize()) {
		t.Fatal("v2 round-trip is not byte-identical")
	}
	if len(sparse.ZeroedRanges()) > 0 && len(wire) >= len(sparse.Encode()) {
		t.Fatalf("v2 frame (%d bytes) not smaller than v1 (%d bytes)", len(wire), len(sparse.Encode()))
	}
}

// TestSparseWireProperty: for any canonical range set, the v2 codec
// round-trips byte-identically and transcoding commutes with encoding —
// Transcode(Encode(), 2) equals EncodeWire() and Transcode(EncodeWire(), 1)
// equals Encode(), bit for bit.
func TestSparseWireProperty(t *testing.T) {
	lib := codecLib(t)
	size := int64(len(lib.Data))
	rng := rand.New(rand.NewSource(11))

	for trial := 0; trial < 200; trial++ {
		nRanges := rng.Intn(40)
		raw := make([]fatbin.Range, 0, nRanges)
		for i := 0; i < nRanges; i++ {
			start := rng.Int63n(size+100) - 50
			raw = append(raw, fatbin.Range{Start: start, End: start + rng.Int63n(size/4+1) - 8})
		}
		sparse := NewSparseImage(lib, raw)
		v1, v2 := sparse.Encode(), sparse.EncodeWire()

		decoded, err := DecodeSparseImage(lib, v2)
		if err != nil {
			t.Fatalf("trial %d: decode v2: %v", trial, err)
		}
		if !bytes.Equal(decoded.Materialize(), sparse.Materialize()) {
			t.Fatalf("trial %d: v2 round-trip differs", trial)
		}

		up, err := TranscodeSparseWire(v1, 2)
		if err != nil {
			t.Fatalf("trial %d: transcode v1→v2: %v", trial, err)
		}
		if !bytes.Equal(up, v2) {
			t.Fatalf("trial %d: transcoded v2 differs from EncodeWire", trial)
		}
		down, err := TranscodeSparseWire(v2, 1)
		if err != nil {
			t.Fatalf("trial %d: transcode v2→v1: %v", trial, err)
		}
		if !bytes.Equal(down, v1) {
			t.Fatalf("trial %d: transcoded v1 differs from Encode", trial)
		}
	}
}

func TestTranscodeSparseWireIdentityAndErrors(t *testing.T) {
	lib := codecLib(t)
	sparse := NewSparseImage(lib, []fatbin.Range{{Start: 64, End: 4096}, {Start: 8192, End: 9000}})
	v1, v2 := sparse.Encode(), sparse.EncodeWire()

	// Same-version transcoding returns the input unchanged, no copy.
	if got, err := TranscodeSparseWire(v1, 1); err != nil || &got[0] != &v1[0] {
		t.Fatalf("v1→v1 not identity (err %v)", err)
	}
	if got, err := TranscodeSparseWire(v2, 2); err != nil || &got[0] != &v2[0] {
		t.Fatalf("v2→v2 not identity (err %v)", err)
	}
	if _, err := TranscodeSparseWire(v1, 3); err == nil {
		t.Fatal("unknown target version accepted")
	}
	if _, err := TranscodeSparseWire([]byte("not a frame"), 2); err == nil {
		t.Fatal("unrecognized encoding accepted")
	}
	if got := SparseWireVersion([]byte{1, 2}); got != 0 {
		t.Fatalf("SparseWireVersion(short) = %d, want 0", got)
	}
}

func TestSparseWireDecodeRejectsCorruption(t *testing.T) {
	lib := codecLib(t)
	sparse := NewSparseImage(lib, []fatbin.Range{{Start: 64, End: 4096}, {Start: 8192, End: 9000}})
	good := sparse.EncodeWire()
	if _, err := DecodeSparseImage(lib, good); err != nil {
		t.Fatal(err)
	}

	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	overlong := corrupt(func(b []byte) {})
	// A varint that never terminates: ten continuation bytes where the
	// range count should be.
	overlong = append(overlong[:sparseWirePrefix], bytes.Repeat([]byte{0x80}, 10)...)
	cases := map[string][]byte{
		"short header":        good[:sparseWirePrefix-1],
		"bad version":         corrupt(func(b []byte) { b[4] = 99 }),
		"wrong size":          corrupt(func(b []byte) { b[8] ^= 0x01 }),
		"wrong digest":        corrupt(func(b []byte) { b[20] ^= 0x01 }),
		"truncated table":     good[:len(good)-1],
		"trailing bytes":      append(append([]byte(nil), good...), 0),
		"count overflow":      corrupt(func(b []byte) { b[sparseWirePrefix] = 0xff; b[sparseWirePrefix+1] |= 0x7f }),
		"unterminated varint": overlong,
		"zero-length range": corrupt(func(b []byte) {
			// First range: gap stays, length becomes 0 — canonical form
			// never has empty ranges.
			_, w := binary.Uvarint(good[sparseWirePrefix+1:])
			b[sparseWirePrefix+1+w] = 0
		}),
	}
	for name, data := range cases {
		if _, err := DecodeSparseImage(lib, data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
		if _, err := TranscodeSparseWire(data, 1); err == nil && name != "wrong digest" && name != "wrong size" {
			// Transcoding is lib-free, so digest/size corruption passes
			// through (it binds at decode time); everything structural must
			// still be rejected.
			t.Errorf("%s: transcode accepted corrupt input", name)
		}
	}

	// Digest binding: a v2 frame for one library must not decode against
	// another.
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.TensorFlow, TailLibs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSparseImage(in.Library(in.LibNames[0]), good); err == nil {
		t.Error("decode accepted a v2 range set for a different library")
	}
}

// FuzzSparseWire hammers the v2 decoder and the lib-free transcoder with
// mutated frames: malformed varints, truncated frames, version skew.
// Corrupt input must error, never panic; accepted input must materialize,
// and a frame the transcoder accepts must survive v2→v1→v2 byte-identically.
func FuzzSparseWire(f *testing.F) {
	in, err := mlframework.Generate(mlframework.Config{Framework: mlframework.PyTorch, TailLibs: 1})
	if err != nil {
		f.Fatal(err)
	}
	lib := in.Library(in.LibNames[0])
	f.Add(NewSparseImage(lib, []fatbin.Range{{Start: 100, End: 2000}}).EncodeWire())
	f.Add(NewSparseImage(lib, nil).EncodeWire())
	f.Add(NewSparseImage(lib, []fatbin.Range{{Start: 0, End: 1}, {Start: 3, End: 4096}}).Encode())
	f.Add([]byte{})
	f.Add([]byte("NSP2 but not really"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodeSparseImage(lib, data); err == nil {
			img := s.Materialize()
			if int64(len(img)) != s.Len() {
				t.Fatalf("materialized %d bytes, image length %d", len(img), s.Len())
			}
		}
		v1, err := TranscodeSparseWire(data, 1)
		if err != nil {
			return
		}
		v2, err := TranscodeSparseWire(v1, 2)
		if err != nil {
			t.Fatalf("accepted frame failed v1→v2: %v", err)
		}
		if SparseWireVersion(data) == 2 && !bytes.Equal(v2, data) {
			t.Fatal("v2→v1→v2 not byte-identical")
		}
	})
}
