package negativa

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"time"

	"negativaml/internal/elfx"
	"negativaml/internal/gpuarch"
	"negativaml/internal/plan"
)

// Stage names of the analysis plan. Every pipeline phase is a stage-graph
// node with an explicit content-derived key; internal/plan schedules them
// and internal/dserve memoizes them memory→disk.
const (
	// StageDetect runs a workload once with the detectors attached. Keyed
	// by (install fingerprint, workload identity) — the identity embeds the
	// step cap.
	StageDetect = "detect"
	// StageLibIndex builds a library's parse-once analysis index. Keyed by
	// the library content digest.
	StageLibIndex = "libindex"
	// StageLocate maps used symbols to file ranges. Keyed by (library
	// digest, used-symbol sets, target architectures).
	StageLocate = "locate"
	// StageCompact zeroes unretained ranges into a sparse image and builds
	// the report. Keyed by its locate stage's key.
	StageCompact = "compact"
	// StageVerifyRef runs the original install capped to obtain a
	// comparable reference digest. Keyed by (install fingerprint, workload
	// identity at the verification step cap).
	StageVerifyRef = "verifyref"
	// StageVerifyRun re-runs a workload on the debloated install. Keyed by
	// (install fingerprint, workload identity, verification step cap, the
	// compact keys of every debloated library).
	StageVerifyRun = "verifyrun"
)

// detectHashSep separates the install fingerprint from the workload
// identity inside a detect-stage hash. The composite stays unhashed so
// memo tiers (the serving plane's profile registry) can recover the parts.
const detectHashSep = "\x00"

// DetectKey is the detect stage's content key. workloadID must come from
// WorkloadIdentity, which embeds the detection step cap.
func DetectKey(installFP, workloadID string) plan.Key {
	return plan.Key{Stage: StageDetect, Hash: installFP + detectHashSep + workloadID}
}

// SplitDetectHash recovers (install fingerprint, workload identity) from a
// detect-stage hash.
func SplitDetectHash(hash string) (installFP, workloadID string, ok bool) {
	return strings.Cut(hash, detectHashSep)
}

// LibIndexKey is the lib-index stage's content key: the library digest.
func LibIndexKey(lib *elfx.Library) plan.Key {
	d := lib.ContentDigest()
	return plan.Key{Stage: StageLibIndex, Hash: hex.EncodeToString(d[:])}
}

// LocateKey derives the content address of one locate computation (and,
// via CompactKey, of the compaction it feeds): SHA-256 over the library's
// content digest, the used CPU-function and kernel sets, and the target
// architectures (canonicalized by sorting). The library digest comes from
// the parse-once analysis index (elfx.Library.ContentDigest), so warm
// lookups hash no library bytes. The library name is deliberately
// excluded — identical libraries shared across installs (the dependency
// tail) hit the memo no matter which install or job they arrive through;
// hits re-label the report with the requesting library's name.
func LocateKey(lib *elfx.Library, usedFuncs, usedKernels []string, archs []gpuarch.SM) plan.Key {
	h := sha256.New()
	d := lib.ContentDigest()
	h.Write(d[:])
	sep := []byte{0}
	writeList := func(tag byte, items []string) {
		h.Write([]byte{0xff, tag})
		for _, s := range items {
			h.Write([]byte(s))
			h.Write(sep)
		}
	}
	// Used-symbol sets arrive sorted from DetectUsage/MergeProfiles; sorting
	// is their canonical form, so the hash is order-independent by contract.
	writeList(1, usedFuncs)
	writeList(2, usedKernels)
	// Architectures only influence fatbin element retention; for CPU-only
	// libraries (the dependency tail) the result is arch-independent, so
	// excluding archs lets heterogeneous-device batches share tail entries.
	if _, hasFB := lib.FatbinRange(); hasFB {
		sorted := append([]gpuarch.SM(nil), archs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		h.Write([]byte{0xff, 3})
		var b [4]byte
		for _, a := range sorted {
			binary.LittleEndian.PutUint32(b[:], uint32(a))
			h.Write(b[:])
		}
	}
	return plan.Key{Stage: StageLocate, Hash: hex.EncodeToString(h.Sum(nil))}
}

// CompactKey derives the compact stage's key from its locate stage's key:
// compaction is a pure function of the location, so the same hash
// addresses both stages.
func CompactKey(locate plan.Key) plan.Key {
	return plan.Key{Stage: StageCompact, Hash: locate.Hash}
}

// VerifyRefKey is the capped reference run's content key. workloadID must
// come from WorkloadIdentity at the verification step cap.
func VerifyRefKey(installFP, workloadID string) plan.Key {
	h := sha256.New()
	h.Write([]byte(installFP))
	h.Write([]byte{0})
	h.Write([]byte(workloadID))
	return plan.Key{Stage: StageVerifyRef, Hash: hex.EncodeToString(h.Sum(nil))}
}

// VerifyRunKey is the verification re-run's content key: the workload (on
// its original install) plus the debloated library set it runs against,
// identified by the compact-stage hashes in install load order.
func VerifyRunKey(installFP, workloadID string, steps int, compactHashes []string) plan.Key {
	h := sha256.New()
	h.Write([]byte(installFP))
	h.Write([]byte{0})
	h.Write([]byte(workloadID))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(steps)))
	h.Write(b[:])
	for _, ch := range compactHashes {
		h.Write([]byte(ch))
		h.Write([]byte{0})
	}
	return plan.Key{Stage: StageVerifyRun, Hash: hex.EncodeToString(h.Sum(nil))}
}

// LibLocation is the locate stage's output for one library: the CPU and
// GPU locations plus the stage's virtual analysis time. It is immutable
// once built and safe to share.
type LibLocation struct {
	CPU *CPULocation
	GPU *GPULocation
	// Locate is the location phase's virtual time for this library.
	Locate time.Duration
}

// LocationHandle is the canonical memoized value of the locate stage: a
// deferred location that computes on first Force. Deferral lets a compact
// stage served from a memo tier skip symbol-to-range resolution entirely;
// a canonical type lets every planner (the single-workload pipeline and
// the batch service) share one stage memo without value-type clashes.
// Forcing is once-only and safe for concurrent use.
type LocationHandle struct {
	once sync.Once
	fn   func() (*LibLocation, error)
	loc  *LibLocation
	err  error
}

// NewLocationHandle wraps a locate computation. fn should capture only
// what the computation needs (the library, its used-symbol slices, the
// architectures) — the handle may outlive the batch that created it in a
// shared memo.
func NewLocationHandle(fn func() (*LibLocation, error)) *LocationHandle {
	return &LocationHandle{fn: fn}
}

// Force computes the location on first call and returns the shared result
// thereafter.
func (h *LocationHandle) Force() (*LibLocation, error) {
	h.once.Do(func() {
		h.loc, h.err = h.fn()
		h.fn = nil
	})
	return h.loc, h.err
}

// LocateLib runs the location stage on one library: used CPU functions map
// to .text file ranges through the symbol table, used kernels decide
// fatbin element retention for the given architectures. The function only
// reads the library, so concurrent calls on a shared *elfx.Library are
// safe.
func LocateLib(lib *elfx.Library, usedFuncs, usedKernels []string, archs []gpuarch.SM) (*LibLocation, error) {
	cpuLoc := LocateCPU(lib, usedFuncs)
	gpuLoc, err := LocateGPU(lib, usedKernels, archs)
	if err != nil {
		return nil, err
	}
	return &LibLocation{
		CPU: cpuLoc,
		GPU: gpuLoc,
		Locate: time.Duration(cpuLoc.TotalFuncs)*locatePerFunc +
			time.Duration(len(gpuLoc.Decisions))*locatePerElement,
	}, nil
}

// CompactLocated runs the compaction stage on a located library: every
// unretained range joins the sparse image's zeroed set, and every report
// size is computed analytically from the range set and the library's
// zero-byte prefix sum — no post-compaction buffer is allocated or
// rescanned. The returned LibDebloat's Analysis is the locate+compact
// virtual time.
func CompactLocated(lib *elfx.Library, loc *LibLocation, usedFuncs, usedKernels []string) *LibDebloat {
	cpuLoc, gpuLoc := loc.CPU, loc.GPU
	sparse := Compact(lib, cpuLoc, gpuLoc)

	idx := lib.Index()
	lr := &LibraryReport{
		Name:                lib.Name,
		FileSize:            lib.FileSize(),
		FileEffective:       idx.NonZeroBytes(),
		FileEffectiveAfter:  sparse.NonZeroBytes(),
		CPUSize:             cpuLoc.TotalBytes,
		FuncCount:           cpuLoc.TotalFuncs,
		FuncKept:            cpuLoc.KeptFuncs,
		ElemCount:           len(gpuLoc.Decisions),
		ElemKept:            gpuLoc.Kept(),
		RemovedArchMismatch: gpuLoc.RemovedBy(ReasonArchMismatch),
		RemovedNoUsedKernel: gpuLoc.RemovedBy(ReasonNoUsedKernel),
		ResidentBytes:       idx.ResidentBytes(),
		ResidentBytesAfter:  sparse.ResidentBytes(),
		UsedFuncs:           usedFuncs,
		UsedKernels:         usedKernels,
		Sparse:              sparse,
	}
	if text := lib.Section(".text"); text != nil {
		lr.CPUSizeAfter = sparse.NonZeroBytesIn(text.Range)
	}
	if fbRange, ok := lib.FatbinRange(); ok {
		// Compare effective (non-zero) bytes on both sides.
		lr.GPUSize = idx.NonZeroBytesIn(fbRange)
		lr.GPUSizeAfter = sparse.NonZeroBytesIn(fbRange)
	}

	compact := time.Duration(lib.FileSize()/1024) * compactPerKB
	return &LibDebloat{Report: lr, Analysis: loc.Locate + compact}
}
