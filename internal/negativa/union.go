package negativa

import (
	"sort"
	"strings"
)

// MergeProfiles computes the union profile of one or more detection
// profiles over the same install: per library, the union of used kernels
// and used CPU functions. Debloating against the union keeps every symbol
// any member workload needs, so one compacted install safely serves the
// whole workload set — the batch service's multi-workload mode. Nil
// profiles are skipped.
//
// The union's RunResult is nil: it aggregates several runs and has no
// single output digest, so callers verify the union-debloated install
// against each member workload's own profiled digest instead.
func MergeProfiles(profiles ...*Profile) *Profile {
	var names []string
	kernels := map[string]map[string]bool{}
	funcs := map[string]map[string]bool{}
	for _, p := range profiles {
		if p == nil {
			continue
		}
		names = append(names, p.Workload)
		accumulate(kernels, p.UsedKernels)
		accumulate(funcs, p.UsedFuncs)
	}
	return &Profile{
		Workload:    strings.Join(names, "+"),
		UsedKernels: flatten(kernels),
		UsedFuncs:   flatten(funcs),
	}
}

// Covers reports whether profile u retains at least everything profile p
// uses — the safety condition for serving p from an install debloated
// against u.
func (u *Profile) Covers(p *Profile) bool {
	return covers(u.UsedKernels, p.UsedKernels) && covers(u.UsedFuncs, p.UsedFuncs)
}

func covers(super, sub map[string][]string) bool {
	for lib, syms := range sub {
		have := map[string]bool{}
		for _, s := range super[lib] {
			have[s] = true
		}
		for _, s := range syms {
			if !have[s] {
				return false
			}
		}
	}
	return true
}

func accumulate(dst map[string]map[string]bool, src map[string][]string) {
	for lib, syms := range src {
		set := dst[lib]
		if set == nil {
			set = map[string]bool{}
			dst[lib] = set
		}
		for _, s := range syms {
			set[s] = true
		}
	}
}

func flatten(src map[string]map[string]bool) map[string][]string {
	out := make(map[string][]string, len(src))
	for lib, set := range src {
		names := make([]string, 0, len(set))
		for s := range set {
			names = append(names, s)
		}
		sort.Strings(names)
		out[lib] = names
	}
	return out
}
