package negativa

import (
	"reflect"
	"testing"
)

func profileOf(name string, kernels, funcs map[string][]string) *Profile {
	return &Profile{Workload: name, UsedKernels: kernels, UsedFuncs: funcs}
}

func TestMergeProfilesDisjoint(t *testing.T) {
	a := profileOf("a",
		map[string][]string{"libx.so": {"k1", "k2"}},
		map[string][]string{"libx.so": {"f1"}})
	b := profileOf("b",
		map[string][]string{"liby.so": {"k3"}},
		map[string][]string{"liby.so": {"f2", "f3"}})

	u := MergeProfiles(a, b)
	if u.Workload != "a+b" {
		t.Errorf("union workload = %q, want a+b", u.Workload)
	}
	if u.RunResult != nil {
		t.Error("union RunResult must be nil")
	}
	wantK := map[string][]string{"libx.so": {"k1", "k2"}, "liby.so": {"k3"}}
	if !reflect.DeepEqual(u.UsedKernels, wantK) {
		t.Errorf("union kernels = %v, want %v", u.UsedKernels, wantK)
	}
	wantF := map[string][]string{"libx.so": {"f1"}, "liby.so": {"f2", "f3"}}
	if !reflect.DeepEqual(u.UsedFuncs, wantF) {
		t.Errorf("union funcs = %v, want %v", u.UsedFuncs, wantF)
	}
}

func TestMergeProfilesOverlapping(t *testing.T) {
	a := profileOf("a",
		map[string][]string{"libx.so": {"k2", "k1"}},
		map[string][]string{"libx.so": {"f1", "f2"}})
	b := profileOf("b",
		map[string][]string{"libx.so": {"k2", "k3"}},
		map[string][]string{"libx.so": {"f2"}})

	u := MergeProfiles(a, b)
	wantK := map[string][]string{"libx.so": {"k1", "k2", "k3"}}
	if !reflect.DeepEqual(u.UsedKernels, wantK) {
		t.Errorf("union kernels = %v, want %v (sorted, deduped)", u.UsedKernels, wantK)
	}
	wantF := map[string][]string{"libx.so": {"f1", "f2"}}
	if !reflect.DeepEqual(u.UsedFuncs, wantF) {
		t.Errorf("union funcs = %v, want %v", u.UsedFuncs, wantF)
	}
	if !u.Covers(a) || !u.Covers(b) {
		t.Error("union must cover every member")
	}
}

func TestMergeProfilesSuperset(t *testing.T) {
	small := profileOf("small",
		map[string][]string{"libx.so": {"k1"}},
		map[string][]string{"libx.so": {"f1"}})
	big := profileOf("big",
		map[string][]string{"libx.so": {"k1", "k2", "k3"}, "liby.so": {"k9"}},
		map[string][]string{"libx.so": {"f1", "f2"}})

	u := MergeProfiles(small, big)
	if !reflect.DeepEqual(u.UsedKernels, big.UsedKernels) {
		t.Errorf("union of subset+superset kernels = %v, want the superset %v", u.UsedKernels, big.UsedKernels)
	}
	if !reflect.DeepEqual(u.UsedFuncs, big.UsedFuncs) {
		t.Errorf("union of subset+superset funcs = %v, want the superset %v", u.UsedFuncs, big.UsedFuncs)
	}
	if !big.Covers(small) {
		t.Error("superset must cover subset")
	}
	if small.Covers(big) {
		t.Error("subset must not cover superset")
	}
}

func TestMergeProfilesSkipsNil(t *testing.T) {
	a := profileOf("a", map[string][]string{"libx.so": {"k1"}}, nil)
	u := MergeProfiles(nil, a, nil)
	if u.Workload != "a" {
		t.Errorf("workload = %q, want a", u.Workload)
	}
	if len(u.UsedKernels["libx.so"]) != 1 {
		t.Errorf("kernels = %v", u.UsedKernels)
	}
}
