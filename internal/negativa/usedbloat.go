package negativa

import (
	"sort"

	"negativaml/internal/mlruntime"
)

// This file implements the paper's §5 "used bloat" discussion as a working
// analysis: code that *is* executed but does not contribute to the steady-
// state computation — e.g. an optimizer initializing a context through
// thousands of one-shot calls. Such code is invisible to usage-based
// debloaters (it is used!), which the paper identifies as the reason
// TensorFlow's CPU code reduces so much less than PyTorch's. The analyzer
// splits the used-function set by run phase: functions called only during
// framework initialization are used-bloat *candidates*; functions that the
// step loop touches are steady-state.

// UsedBloatReport classifies one workload's used CPU functions.
type UsedBloatReport struct {
	Workload string
	// InitOnly maps library -> functions called during initialization and
	// never again (used-bloat candidates).
	InitOnly map[string][]string
	// SteadyState maps library -> functions the step loop executes.
	SteadyState map[string][]string
}

// InitOnlyCount returns the total number of used-bloat candidates.
func (r *UsedBloatReport) InitOnlyCount() int {
	n := 0
	for _, fs := range r.InitOnly {
		n += len(fs)
	}
	return n
}

// SteadyStateCount returns the total number of steady-state functions.
func (r *UsedBloatReport) SteadyStateCount() int {
	n := 0
	for _, fs := range r.SteadyState {
		n += len(fs)
	}
	return n
}

// InitOnlyFraction returns the used-bloat candidate share of all used
// functions (the paper predicts this is much larger for TensorFlow).
func (r *UsedBloatReport) InitOnlyFraction() float64 {
	total := r.InitOnlyCount() + r.SteadyStateCount()
	if total == 0 {
		return 0
	}
	return float64(r.InitOnlyCount()) / float64(total)
}

// AnalyzeUsedBloat runs the workload once with a phase-aware function
// profiler and classifies every used function as init-only or steady-state.
func AnalyzeUsedBloat(w mlruntime.Workload, maxSteps int) (*UsedBloatReport, error) {
	type key struct{ lib, fn string }
	phase := "init"
	initSeen := make(map[key]bool)
	stepSeen := make(map[key]bool)

	_, err := mlruntime.Run(w, mlruntime.Options{
		MaxSteps:  maxSteps,
		PhaseHook: func(p string) { phase = p },
		FuncHook: func(lib, fn string) {
			k := key{lib, fn}
			if phase == "init" {
				initSeen[k] = true
			} else {
				stepSeen[k] = true
			}
		},
	})
	if err != nil {
		return nil, err
	}

	rep := &UsedBloatReport{
		Workload:    w.Name,
		InitOnly:    make(map[string][]string),
		SteadyState: make(map[string][]string),
	}
	for k := range initSeen {
		if !stepSeen[k] {
			rep.InitOnly[k.lib] = append(rep.InitOnly[k.lib], k.fn)
		}
	}
	for k := range stepSeen {
		rep.SteadyState[k.lib] = append(rep.SteadyState[k.lib], k.fn)
	}
	for _, m := range []map[string][]string{rep.InitOnly, rep.SteadyState} {
		for _, fs := range m {
			sort.Strings(fs)
		}
	}
	return rep, nil
}
