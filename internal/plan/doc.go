// Package plan is a small deterministic stage-graph scheduler for the
// analysis pipeline: each stage of detect→locate→compact→verify becomes a
// node with an explicit content-derived cache key, and an execution runs
// the nodes in dependency order over a bounded worker pool with per-stage
// memoization.
//
// Nodes declare their dependencies at graph-build time but resolve their
// cache keys late — a node's key function runs after its dependencies have
// completed, so a stage whose key depends on an upstream value (a locate
// stage keyed by the used-symbol sets a detection union produces) still
// gets a true content address. A resolved key is looked up in the Memo
// before the node's work function runs; a hit returns the memoized value
// and the work function never executes.
//
// Determinism: a graph's outputs are a pure function of its inputs — node
// values are content-keyed and node work functions are required to be
// deterministic. The schedule itself is concurrent (every node whose
// dependencies are done may run, bounded by the pool), so wall-clock
// interleaving varies run to run, but values, keys, hit/miss outcomes
// against a fixed memo state, and error selection (first error in node
// insertion order) do not.
package plan
