package plan

import "sync"

// Memo is the per-stage memoization surface the scheduler consults with
// each node's resolved content key. hint is the node's reconstruction hint
// (Node.WithHint) — tiered implementations use it to rebuild a value from
// a persisted form (e.g. decoding a stored range set against the live
// library); plain memory memos ignore it.
//
// GetOrCompute returns the memoized value with hit=true, or computes,
// stores, and returns it with hit=false. Implementations must be safe for
// concurrent use and should collapse concurrent computes of the same key
// into one (the contract MemMemo provides).
type Memo interface {
	GetOrCompute(key Key, hint any, compute func() (any, error)) (v any, hit bool, err error)
}

// memoEntry is one MemMemo slot: the inflight channel gates concurrent
// computes of the same key (singleflight), and val holds the result once
// ready.
type memoEntry struct {
	ready chan struct{}
	val   any
	err   error
}

// MemMemo is an in-memory Memo bounded by entry count, with singleflight
// semantics: concurrent GetOrCompute calls for the same key run the
// compute exactly once and share its result. Failed computes are not
// cached — the next call retries. At the bound the memo wipes wholesale
// (entries are content-keyed derivations, so a wipe only costs
// recomputation, never correctness).
type MemMemo struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*memoEntry
}

// DefaultMemoEntries bounds NewMemMemo's retention.
const DefaultMemoEntries = 4096

// NewMemMemo returns an empty memo bounded to max entries (values < 1 take
// DefaultMemoEntries).
func NewMemMemo(max int) *MemMemo {
	if max < 1 {
		max = DefaultMemoEntries
	}
	return &MemMemo{max: max, entries: map[Key]*memoEntry{}}
}

// GetOrCompute implements Memo.
func (m *MemMemo) GetOrCompute(key Key, _ any, compute func() (any, error)) (any, bool, error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.ready
		if e.err == nil {
			return e.val, true, nil
		}
		// The flight we joined failed; fall through to our own attempt.
		return m.retry(key, compute)
	}
	e := m.claim(key)
	m.mu.Unlock()

	return m.fill(key, e, compute)
}

// claim inserts a fresh inflight entry for key, wiping at the bound.
// Callers hold m.mu.
func (m *MemMemo) claim(key Key) *memoEntry {
	if len(m.entries) >= m.max {
		m.entries = map[Key]*memoEntry{}
	}
	e := &memoEntry{ready: make(chan struct{})}
	m.entries[key] = e
	return e
}

// fill runs the compute for the claimed entry, publishes the result, and
// drops failed entries so later calls retry.
func (m *MemMemo) fill(key Key, e *memoEntry, compute func() (any, error)) (any, bool, error) {
	e.val, e.err = compute()
	close(e.ready)
	if e.err != nil {
		m.mu.Lock()
		// Only drop our own failed flight; a concurrent success under the
		// same key (after a wipe) must survive.
		if m.entries[key] == e {
			delete(m.entries, key)
		}
		m.mu.Unlock()
		return nil, false, e.err
	}
	return e.val, false, nil
}

// retry re-enters the memo after joining a failed flight: by the time we
// get here the failed entry has been dropped, so this either joins a newer
// healthy flight or claims its own.
func (m *MemMemo) retry(key Key, compute func() (any, error)) (any, bool, error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.mu.Unlock()
		<-e.ready
		if e.err == nil {
			return e.val, true, nil
		}
		// Two consecutive failures: report without further retries —
		// deterministic computes will keep failing.
		return nil, false, e.err
	}
	e := m.claim(key)
	m.mu.Unlock()
	return m.fill(key, e, compute)
}

// Len returns the number of memoized entries (inflight included).
func (m *MemMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
