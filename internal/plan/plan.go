package plan

import (
	"fmt"
	"time"
)

// Key is the content address of one stage computation: the stage name plus
// a canonical content-derived string (typically a hex digest, but any
// canonical form works — the detect stage uses its composite identity
// directly so memo tiers can recover the parts).
type Key struct {
	Stage string
	Hash  string
}

// Zero reports whether the key is empty — nodes resolving a zero key are
// executed unmemoized (cheap glue stages like profile unions or install
// clones that are not worth an address).
func (k Key) Zero() bool { return k == Key{} }

// String renders the key as stage/hash — the form ring sharding and logs
// use.
func (k Key) String() string { return k.Stage + "/" + k.Hash }

// Node is one vertex of a stage graph. Nodes are created through
// Graph.Node and immutable afterwards; Value, ResolvedKey, and Hit are
// valid once Execute has returned.
type Node struct {
	stage string
	deps  []*Node
	keyFn func(deps []any) (Key, error)
	runFn func(deps []any) (any, error)
	hint  any

	done chan struct{}
	out  any
	err  error
	key  Key
	hit  bool
	src  Source
}

// Value returns the node's output after Execute.
func (n *Node) Value() any { return n.out }

// Err returns the node's error after Execute (a dependency's error
// propagates unwrapped, so the root cause is reported once).
func (n *Node) Err() error { return n.err }

// ResolvedKey returns the content key the node resolved during Execute
// (zero for unmemoized glue nodes or nodes that never ran).
func (n *Node) ResolvedKey() Key { return n.key }

// Hit reports whether the node's value came from the memo.
func (n *Node) Hit() bool { return n.hit }

// ValueSource returns which tier produced the node's value after Execute:
// SourceComputed unless the memo implements SourcedMemo and served the
// value from one of its tiers.
func (n *Node) ValueSource() Source { return n.src }

// Graph is a stage DAG under construction. Build it single-goroutine, then
// Execute it; a Graph is single-use.
type Graph struct {
	nodes []*Node
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Len returns the number of nodes added so far — the denominator a
// progress observer divides completed-stage counts by.
func (g *Graph) Len() int { return len(g.nodes) }

// Node adds a stage node. deps are the nodes whose values feed this one
// (their outputs arrive in order as the deps slice of both functions).
// keyFn resolves the node's content key once dependencies are done; a nil
// keyFn (or a zero resolved key) marks the node unmemoized. runFn computes
// the value on a memo miss. Either function may also read a captured
// dependency *Node's ResolvedKey — dependency keys are resolved before
// dependents run, which is how a compact stage keys itself by its locate
// stage's key.
func (g *Graph) Node(stage string, deps []*Node, keyFn func(deps []any) (Key, error), runFn func(deps []any) (any, error)) *Node {
	n := &Node{stage: stage, deps: deps, keyFn: keyFn, runFn: runFn, done: make(chan struct{})}
	g.nodes = append(g.nodes, n)
	return n
}

// WithHint attaches an opaque reconstruction hint handed to the memo with
// the node's key — e.g. the live library a disk tier decodes a persisted
// range set against. Returns the node for chaining.
func (n *Node) WithHint(hint any) *Node {
	n.hint = hint
	return n
}

// StaticKey adapts a key known at graph-build time to a keyFn.
func StaticKey(k Key) func([]any) (Key, error) {
	return func([]any) (Key, error) { return k, nil }
}

// Executor bounds concurrent node execution. A node holds a slot only
// while resolving its key and running its work function, never while
// waiting on dependencies, so graph execution cannot deadlock the
// executor. *Pool implements it.
type Executor interface {
	Acquire()
	Release()
}

// Observer receives per-stage outcomes during execution — one call per
// successfully finished node, memoized or not (unmemoized nodes always
// report hit=false). wall is the time spent resolving the key plus
// computing (hits resolve but do not compute). Implementations must be
// safe for concurrent use.
type Observer interface {
	StageDone(stage string, hit bool, wall time.Duration)
}

// Execute runs the graph: every node starts once its dependencies are
// done, bounded by ex. memo, when non-nil, is consulted with each node's
// resolved key; obs, when non-nil, observes every finished node's outcome.
// Execute blocks until every reachable node has finished and returns the
// first error in node insertion order (nodes downstream of a failed node
// do not run; they inherit the failure).
func (g *Graph) Execute(ex Executor, memo Memo, obs Observer) error {
	return g.ExecuteWith(ex, memo, obs, ExecOptions{})
}

// ExecuteWith is Execute with scheduling options. Ready nodes are
// dispatched in descending critical-path length — each node weighted by
// opt.Costs (unit weight without it) plus its heaviest dependent chain —
// so when more nodes are ready than the executor has slots, the slots go
// to the work the batch's wall clock is actually waiting on, not to
// whatever happened to become ready first.
func (g *Graph) ExecuteWith(ex Executor, memo Memo, obs Observer, opt ExecOptions) error {
	prio := g.criticalPaths(opt.Costs)
	pe := newPrioExecutor(ex)
	for i, n := range g.nodes {
		go n.exec(prioSlot{p: pe, priority: prio[i]}, memo, obs)
	}
	for _, n := range g.nodes {
		<-n.done
	}
	pe.stop()
	for _, n := range g.nodes {
		if n.err != nil {
			return n.err
		}
	}
	return nil
}

func (n *Node) exec(ex Executor, memo Memo, obs Observer) {
	defer close(n.done)

	vals := make([]any, len(n.deps))
	for i, d := range n.deps {
		<-d.done
		if d.err != nil {
			// Propagate the root cause unwrapped: Execute reports it once,
			// in insertion order, rather than once per dependent.
			n.err = d.err
			return
		}
		vals[i] = d.out
	}

	ex.Acquire()
	defer ex.Release()
	start := time.Now()

	if n.keyFn != nil {
		key, err := n.keyFn(vals)
		if err != nil {
			n.err = fmt.Errorf("plan: %s key: %w", n.stage, err)
			return
		}
		n.key = key
	}
	if memo == nil || n.key.Zero() {
		n.out, n.err = n.runFn(vals)
		if n.err == nil && obs != nil {
			notify(obs, n.stage, SourceComputed, time.Since(start))
		}
		return
	}
	var v any
	var err error
	src := SourceComputed
	if sm, ok := memo.(SlotSourcedMemo); ok {
		v, src, err = sm.GetOrComputeSourcedSlot(ex, n.key, n.hint, func() (any, error) { return n.runFn(vals) })
	} else if sm, ok := memo.(SourcedMemo); ok {
		v, src, err = sm.GetOrComputeSourced(n.key, n.hint, func() (any, error) { return n.runFn(vals) })
	} else {
		var hit bool
		v, hit, err = memo.GetOrCompute(n.key, n.hint, func() (any, error) { return n.runFn(vals) })
		if hit {
			src = SourceMemory
		}
	}
	if err != nil {
		n.err = err
		return
	}
	n.out, n.hit, n.src = v, src.Hit(), src
	if obs != nil {
		notify(obs, n.stage, src, time.Since(start))
	}
}

// notify delivers a finished node's outcome: StageDone always, StageSource
// additionally when the observer wants tier attribution.
func notify(obs Observer, stage string, src Source, wall time.Duration) {
	obs.StageDone(stage, src.Hit(), wall)
	if so, ok := obs.(SourceObserver); ok {
		so.StageSource(stage, src, wall)
	}
}

// multiObserver fans one execution's outcomes out to several observers —
// the serving plane's global metrics observer plus a per-job progress
// observer, for example. Source attribution is forwarded to every member
// that wants it.
type multiObserver []Observer

func (m multiObserver) StageDone(stage string, hit bool, wall time.Duration) {
	for _, o := range m {
		o.StageDone(stage, hit, wall)
	}
}

func (m multiObserver) StageSource(stage string, src Source, wall time.Duration) {
	for _, o := range m {
		if so, ok := o.(SourceObserver); ok {
			so.StageSource(stage, src, wall)
		}
	}
}

// MultiObserver combines observers into one; nil members are skipped, and a
// single surviving member is returned unwrapped. Returns nil when none
// survive.
func MultiObserver(obs ...Observer) Observer {
	var m multiObserver
	for _, o := range obs {
		if o != nil {
			m = append(m, o)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}
