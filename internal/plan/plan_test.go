package plan

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// obs records stage outcomes thread-safely.
type obs struct {
	mu     sync.Mutex
	hits   map[string]int
	misses map[string]int
}

func newObs() *obs { return &obs{hits: map[string]int{}, misses: map[string]int{}} }

func (o *obs) StageDone(stage string, hit bool, _ time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if hit {
		o.hits[stage]++
	} else {
		o.misses[stage]++
	}
}

func TestGraphExecutesInDependencyOrder(t *testing.T) {
	g := New()
	a := g.Node("a", nil, StaticKey(Key{"a", "1"}), func([]any) (any, error) { return 2, nil })
	b := g.Node("b", nil, StaticKey(Key{"b", "1"}), func([]any) (any, error) { return 3, nil })
	mul := g.Node("mul", []*Node{a, b}, nil, func(deps []any) (any, error) {
		return deps[0].(int) * deps[1].(int), nil
	})
	// Key resolved late, from dependency values.
	sq := g.Node("sq", []*Node{mul}, func(deps []any) (Key, error) {
		return Key{"sq", fmt.Sprint(deps[0].(int))}, nil
	}, func(deps []any) (any, error) {
		return deps[0].(int) * deps[0].(int), nil
	})

	memo := NewMemMemo(0)
	o := newObs()
	if err := g.Execute(NewPool(2), memo, o); err != nil {
		t.Fatal(err)
	}
	if sq.Value().(int) != 36 {
		t.Fatalf("sq = %v, want 36", sq.Value())
	}
	if got := sq.ResolvedKey(); got != (Key{"sq", "6"}) {
		t.Fatalf("late-bound key = %v", got)
	}
	if mul.ResolvedKey() != (Key{}) || mul.Hit() {
		t.Fatalf("glue node must stay unmemoized")
	}
	if o.misses["sq"] != 1 || o.hits["sq"] != 0 {
		t.Fatalf("observer: %+v", o)
	}

	// Second execution over the same memo: memoized stages hit, values equal.
	g2 := New()
	a2 := g2.Node("a", nil, StaticKey(Key{"a", "1"}), func([]any) (any, error) { return -1, nil })
	if err := g2.Execute(NewPool(1), memo, o); err != nil {
		t.Fatal(err)
	}
	if !a2.Hit() || a2.Value().(int) != 2 {
		t.Fatalf("memo must serve the first execution's value: hit=%v v=%v", a2.Hit(), a2.Value())
	}
}

func TestGraphErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	g := New()
	bad := g.Node("bad", nil, nil, func([]any) (any, error) { return nil, boom })
	var downstreamRan atomic.Bool
	g.Node("down", []*Node{bad}, nil, func([]any) (any, error) {
		downstreamRan.Store(true)
		return nil, nil
	})
	g.Node("ok", nil, nil, func([]any) (any, error) { return 1, nil })

	err := g.Execute(NewPool(4), nil, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if downstreamRan.Load() {
		t.Fatal("downstream of a failed node must not run")
	}
}

func TestGraphFirstErrorInInsertionOrder(t *testing.T) {
	g := New()
	for i := 0; i < 8; i++ {
		i := i
		g.Node("n", nil, nil, func([]any) (any, error) { return nil, fmt.Errorf("err-%d", i) })
	}
	err := g.Execute(NewPool(8), nil, nil)
	if err == nil || err.Error() != "err-0" {
		t.Fatalf("err = %v, want err-0", err)
	}
}

func TestGraphKeyErrorFails(t *testing.T) {
	g := New()
	g.Node("k", nil, func([]any) (Key, error) { return Key{}, errors.New("no key") },
		func([]any) (any, error) { return 1, nil })
	if err := g.Execute(NewPool(1), NewMemMemo(0), nil); err == nil {
		t.Fatal("want key resolution error")
	}
}

func TestGraphNodesOverlapWithinPool(t *testing.T) {
	// Two independent slow nodes on a 2-wide pool must overlap: their
	// combined wall time stays well under the serial sum. This is the
	// property that lets a capped reference run overlap verification.
	g := New()
	const d = 40 * time.Millisecond
	slow := func([]any) (any, error) { time.Sleep(d); return nil, nil }
	g.Node("x", nil, nil, slow)
	g.Node("y", nil, nil, slow)
	start := time.Now()
	if err := g.Execute(NewPool(2), nil, nil); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 2*d-d/4 {
		t.Fatalf("independent nodes did not overlap: %v", wall)
	}
}

func TestMemMemoSingleflight(t *testing.T) {
	memo := NewMemMemo(0)
	var computes atomic.Int64
	const goroutines = 64
	var wg sync.WaitGroup
	vals := make([]any, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := memo.GetOrCompute(Key{"s", "k"}, nil, func() (any, error) {
				computes.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("concurrent computes for one key: %d, want 1", n)
	}
	for i, v := range vals {
		if v.(int) != 42 {
			t.Fatalf("vals[%d] = %v", i, v)
		}
	}
}

func TestMemMemoFailedComputeRetries(t *testing.T) {
	memo := NewMemMemo(0)
	calls := 0
	_, _, err := memo.GetOrCompute(Key{"s", "k"}, nil, func() (any, error) {
		calls++
		return nil, errors.New("transient")
	})
	if err == nil {
		t.Fatal("want error")
	}
	v, hit, err := memo.GetOrCompute(Key{"s", "k"}, nil, func() (any, error) {
		calls++
		return 7, nil
	})
	if err != nil || hit || v.(int) != 7 || calls != 2 {
		t.Fatalf("retry after failure: v=%v hit=%v err=%v calls=%d", v, hit, err, calls)
	}
	if memo.Len() != 1 {
		t.Fatalf("len = %d", memo.Len())
	}
}

func TestMemMemoBoundWipes(t *testing.T) {
	memo := NewMemMemo(4)
	for i := 0; i < 9; i++ {
		memo.GetOrCompute(Key{"s", fmt.Sprint(i)}, nil, func() (any, error) { return i, nil })
	}
	if n := memo.Len(); n > 4 {
		t.Fatalf("memo exceeded bound: %d", n)
	}
}

func TestPoolAcquireReleaseBounds(t *testing.T) {
	p := NewPool(2)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Acquire()
			defer p.Release()
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if peak.Load() > 2 {
		t.Fatalf("peak concurrency %d exceeds pool width", peak.Load())
	}
}
