package plan

import "sync"

// Pool is the bounded worker executor shared by the stage-graph scheduler
// and the batch service: a counting semaphore capping how many tasks —
// graph nodes, per-library locate/compact calls, per-workload detection
// and verification runs — execute concurrently across all jobs.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool running at most workers tasks at once (workers < 1
// is treated as 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Acquire takes a worker slot, blocking until one is free. Holders must
// not Acquire again before Release — the stage scheduler never does (a
// node holds its slot only while running, never while waiting on
// dependencies).
func (p *Pool) Acquire() { p.sem <- struct{}{} }

// Release returns a worker slot.
func (p *Pool) Release() { <-p.sem }

// Map is the pool's convenience fan-out for flat task lists outside a
// stage graph (the scheduler itself uses Acquire/Release): it runs fn(i)
// for every i in [0, n), waits for all of them, and returns the
// lowest-index error. Map must not be called from inside a Map task: a
// task that blocks on a slot while holding one can deadlock the
// semaphore.
func (p *Pool) Map(n int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		p.Acquire()
		wg.Add(1)
		go func(i int) {
			defer func() { p.Release(); wg.Done() }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
