package plan

import (
	"container/heap"
	"sync"
	"time"
)

// CostModel supplies per-stage cost estimates for critical-path
// scheduling — typically the serving plane's measured stage-timing
// history. StageCost returns the expected wall time of one execution of
// the stage; zero (or negative) means unknown, which schedules the stage
// at unit weight.
type CostModel interface {
	StageCost(stage string) time.Duration
}

// ExecOptions tune one graph execution.
type ExecOptions struct {
	// Costs weights nodes for critical-path dispatch. Nil falls back to
	// unit weights, making a node's priority its dependent-chain depth —
	// still a better dispatch order than FIFO for diamond-shaped graphs.
	Costs CostModel
}

// criticalPaths computes each node's critical-path length: its own cost
// plus the heaviest cost chain among its dependents, in integer
// microseconds (floored at 1 so unknown-cost stages still rank by chain
// depth). Insertion order is topological — Graph.Node requires deps to
// exist first — so one reverse sweep suffices.
func (g *Graph) criticalPaths(costs CostModel) []int64 {
	// Nodes share few distinct stages, and a cost model may do real work
	// per query (percentile summaries), so ask it once per stage.
	byStage := map[string]int64{}
	cost := func(n *Node) int64 {
		if costs == nil {
			return 1
		}
		c, ok := byStage[n.stage]
		if !ok {
			c = 1
			if d := costs.StageCost(n.stage); d > 0 {
				c = int64(d/time.Microsecond) + 1
			}
			byStage[n.stage] = c
		}
		return c
	}
	idx := make(map[*Node]int, len(g.nodes))
	for i, n := range g.nodes {
		idx[n] = i
	}
	cp := make([]int64, len(g.nodes))
	// best[i] accumulates the max critical path among node i's dependents,
	// filled as those dependents are processed (they come later in
	// insertion order, i.e. earlier in this reverse sweep).
	best := make([]int64, len(g.nodes))
	for i := len(g.nodes) - 1; i >= 0; i-- {
		n := g.nodes[i]
		cp[i] = cost(n) + best[i]
		for _, d := range n.deps {
			if j := idx[d]; cp[i] > best[j] {
				best[j] = cp[i]
			}
		}
	}
	return cp
}

// schedWaiter is one node blocked on slot admission.
type schedWaiter struct {
	priority int64
	seq      int64 // FIFO tie-break, keeps equal-priority dispatch stable
	ready    chan struct{}
}

type waiterHeap []*schedWaiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*schedWaiter)) }
func (h *waiterHeap) Pop() any     { old := *h; n := len(old); w := old[n-1]; *h = old[:n-1]; return w }

// prioExecutor turns a plain Executor's FIFO admission into priority
// admission: blocked nodes wait in a critical-path-ordered heap, and a
// broker goroutine acquires underlying slots one at a time, granting each
// to the heaviest waiter at that moment. Releases go straight to the
// underlying executor, so memo tiers that yield their slot during network
// waits keep working unchanged.
type prioExecutor struct {
	ex   Executor
	mu   sync.Mutex
	wait waiterHeap
	seq  int64
	kick chan struct{}
	quit chan struct{}
}

func newPrioExecutor(ex Executor) *prioExecutor {
	p := &prioExecutor{ex: ex, kick: make(chan struct{}, 1), quit: make(chan struct{})}
	go p.broker()
	return p
}

// broker admits waiters in priority order. It only ever holds an
// underlying slot for the instant between Acquire and grant, and it only
// calls Acquire while a waiter exists — so at shutdown (every node done,
// heap empty) it is parked on the select and exits cleanly.
func (p *prioExecutor) broker() {
	for {
		select {
		case <-p.quit:
			return
		case <-p.kick:
		}
		for {
			p.mu.Lock()
			empty := len(p.wait) == 0
			p.mu.Unlock()
			if empty {
				break
			}
			p.ex.Acquire()
			p.mu.Lock()
			w := heap.Pop(&p.wait).(*schedWaiter)
			p.mu.Unlock()
			close(w.ready)
		}
	}
}

// acquire blocks until the broker grants this node a slot, competing by
// critical-path priority.
func (p *prioExecutor) acquire(priority int64) {
	w := &schedWaiter{priority: priority, ready: make(chan struct{})}
	p.mu.Lock()
	w.seq = p.seq
	p.seq++
	heap.Push(&p.wait, w)
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
	<-w.ready
}

// stop shuts the broker down. Call only after every node has finished —
// the heap is empty by then, so the broker is never stranded inside an
// underlying Acquire.
func (p *prioExecutor) stop() { close(p.quit) }

// prioSlot adapts one node's view of the shared prioExecutor to the
// Executor interface Node.exec expects: Acquire joins the priority queue
// at the node's critical-path weight, Release frees the underlying slot
// directly.
type prioSlot struct {
	p        *prioExecutor
	priority int64
}

func (s prioSlot) Acquire() { s.p.acquire(s.priority) }
func (s prioSlot) Release() { s.p.ex.Release() }
