package plan

import (
	"sync"
	"testing"
	"time"
)

// mapCosts is a CostModel over a fixed stage→cost table.
type mapCosts map[string]time.Duration

func (m mapCosts) StageCost(stage string) time.Duration { return m[stage] }

// TestCriticalPaths checks the weighting sweep on a diamond: the heavy
// branch's members carry the heavy chain, and the shared root carries the
// heaviest path through it.
func TestCriticalPaths(t *testing.T) {
	g := New()
	run := func([]any) (any, error) { return nil, nil }
	root := g.Node("root", nil, nil, run)
	light := g.Node("light", []*Node{root}, nil, run)
	heavy := g.Node("heavy", []*Node{root}, nil, run)
	sink := g.Node("sink", []*Node{light, heavy}, nil, run)
	_ = sink

	costs := mapCosts{
		"root":  1 * time.Millisecond,
		"light": 1 * time.Millisecond,
		"heavy": 50 * time.Millisecond,
		"sink":  1 * time.Millisecond,
	}
	cp := g.criticalPaths(costs)
	// Expected critical-path lengths in microseconds (+1 per node):
	// sink=1001, light=1001+1001, heavy=50001+1001, root=1001+51002.
	if cp[3] != 1001 {
		t.Fatalf("sink cp = %d", cp[3])
	}
	if cp[2] != 50001+1001 {
		t.Fatalf("heavy cp = %d", cp[2])
	}
	if cp[1] != 1001+1001 {
		t.Fatalf("light cp = %d", cp[1])
	}
	if cp[0] != 1001+50001+1001 {
		t.Fatalf("root cp = %d", cp[0])
	}
	if cp[2] <= cp[1] {
		t.Fatal("heavy branch must outweigh light branch")
	}

	// Without a cost model every node weighs 1: priority is chain depth.
	unit := g.criticalPaths(nil)
	if unit[0] != 3 || unit[1] != 2 || unit[2] != 2 || unit[3] != 1 {
		t.Fatalf("unit weights = %v", unit)
	}
}

// gatedExecutor blocks every Acquire until the test hands out a permit,
// so grant order is fully under test control.
type gatedExecutor struct {
	permits chan struct{}
}

func (g *gatedExecutor) Acquire() { <-g.permits }
func (g *gatedExecutor) Release() {}

// TestPrioExecutorGrantsByPriority enqueues waiters of known priorities
// while the underlying executor is out of slots, then releases permits one
// at a time: grants must come out heaviest-first, FIFO within ties.
func TestPrioExecutorGrantsByPriority(t *testing.T) {
	ex := &gatedExecutor{permits: make(chan struct{})}
	p := newPrioExecutor(ex)
	defer p.stop()

	prios := []int64{10, 999, 5, 999, 40}
	order := make(chan int, len(prios))
	var wg sync.WaitGroup
	for i, pr := range prios {
		// Enqueue strictly one at a time so seq (the FIFO tie-break)
		// matches slice order.
		entered := make(chan struct{})
		wg.Add(1)
		go func(i int, pr int64) {
			defer wg.Done()
			close(entered)
			p.acquire(pr)
			order <- i
		}(i, pr)
		<-entered
		waitWaiters(t, p, i+1)
	}

	// Release permits one at a time; each grant is the heaviest waiter.
	want := []int{1, 3, 4, 0, 2} // 999 (seq first), 999, 40, 10, 5
	for k, w := range want {
		ex.permits <- struct{}{}
		got := <-order
		if got != w {
			t.Fatalf("grant %d went to waiter %d (prio %d), want waiter %d (prio %d)",
				k, got, prios[got], w, prios[w])
		}
	}
	wg.Wait()
}

// waitWaiters blocks until the priority heap holds n waiters.
func waitWaiters(t *testing.T, p *prioExecutor, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		got := len(p.wait)
		p.mu.Unlock()
		if got == n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("heap never reached %d waiters", n)
}

// TestExecuteWithCostsRunsGraph: the priority path changes dispatch order
// only — results, memo interaction, and error handling stay intact.
func TestExecuteWithCostsRunsGraph(t *testing.T) {
	g := New()
	a := g.Node("a", nil, nil, func([]any) (any, error) { return 1, nil })
	b := g.Node("b", []*Node{a}, nil, func(deps []any) (any, error) { return deps[0].(int) + 1, nil })
	c := g.Node("c", []*Node{a, b}, nil, func(deps []any) (any, error) {
		return deps[0].(int) + deps[1].(int), nil
	})
	err := g.ExecuteWith(NewPool(2), nil, nil, ExecOptions{Costs: mapCosts{"a": time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Value().(int) != 3 {
		t.Fatalf("c = %v", c.Value())
	}
}
