package plan

import "time"

// Source identifies which memo tier produced a stage value. Tiered memos
// (the serving plane's memory → castore → owning-peer lookup) report it
// through the optional SourcedMemo interface so observers can tell a local
// recompute from a disk restore from a cross-node read-through.
type Source int

const (
	// SourceComputed means the node's work function ran.
	SourceComputed Source = iota
	// SourceMemory means the value came from an in-memory memo tier.
	SourceMemory
	// SourceDisk means the value was restored from a local persistent tier.
	SourceDisk
	// SourcePeer means the value was fetched from (or executed on) the
	// stage's owning cluster peer.
	SourcePeer
)

// Hit reports whether the value was served without running the node's work
// function. Remote execution on an owning peer counts as a hit from this
// node's perspective: no local compute happened.
func (s Source) Hit() bool { return s != SourceComputed }

// String returns the source's metrics-friendly name.
func (s Source) String() string {
	switch s {
	case SourceMemory:
		return "memory"
	case SourceDisk:
		return "disk"
	case SourcePeer:
		return "peer"
	default:
		return "computed"
	}
}

// SourcedMemo is an optional Memo extension for tiered implementations
// that can say where a value came from. When the memo handed to Execute
// implements it, the scheduler calls GetOrComputeSourced instead of
// GetOrCompute and exposes the source via Node.ValueSource and the
// SourceObserver callback.
type SourcedMemo interface {
	Memo
	GetOrComputeSourced(key Key, hint any, compute func() (any, error)) (v any, src Source, err error)
}

// SlotSourcedMemo is an optional SourcedMemo refinement: the scheduler
// additionally hands each consultation the calling node's own executor
// slot. Memo tiers that yield the slot around network waits re-acquire
// through it, so under priority admission (ExecuteWith) a node returning
// from a peer round trip re-joins the queue at its critical-path weight
// instead of racing the raw pool ahead of heavier waiters. slot is only
// valid for the duration of the call; implementations fall back to their
// attached executor when it is nil.
type SlotSourcedMemo interface {
	SourcedMemo
	GetOrComputeSourcedSlot(slot Executor, key Key, hint any, compute func() (any, error)) (v any, src Source, err error)
}

// SourceObserver is an optional Observer extension: implementations also
// receive each finished node's value source (SourceComputed for unmemoized
// glue nodes and plain misses). It fires in addition to StageDone, never
// instead of it.
type SourceObserver interface {
	StageSource(stage string, src Source, wall time.Duration)
}
