// Package trace provides the two tracing tools compared in the paper:
// the lightweight kernel detector hook (Negativa-ML's detection phase,
// §3.1) and an NSys-like full tracer baseline (§4.6).
package trace
