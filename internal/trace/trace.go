package trace

import (
	"sort"
	"time"

	"negativaml/internal/cudasim"
	"negativaml/internal/cupti"
)

// KernelDetector records the names of CPU-launching kernels by hooking
// cuModuleGetFunction. Because that driver function runs once per kernel no
// matter how many times the kernel is launched, the detector's record cost
// is paid once per kernel, not once per launch.
type KernelDetector struct {
	sub  *cupti.Subscriber
	used map[string]map[string]bool // library -> kernel set
}

// DetectorCosts returns the cost profile of the detector's CUPTI
// subscription: moderate interposition cost on every driver call (CUPTI
// instruments the driver API as a whole) plus a small per-record cost.
func DetectorCosts() (instrumentation, perRecord time.Duration) {
	return 36 * time.Microsecond, 8 * time.Microsecond
}

// AttachDetector subscribes a new kernel detector to the driver.
func AttachDetector(d *cudasim.Driver) *KernelDetector {
	instr, rec := DetectorCosts()
	kd := &KernelDetector{
		sub: &cupti.Subscriber{
			Name:                "negativa-ml-kernel-detector",
			InstrumentationCost: instr,
			PerRecordCost:       rec,
		},
		used: make(map[string]map[string]bool),
	}
	kd.sub.EnableCallback(cupti.CBIDModuleGetFunction)
	d.Hooks.Subscribe(kd.sub, func(data *cupti.CallbackData) {
		set := kd.used[data.Module]
		if set == nil {
			set = make(map[string]bool)
			kd.used[data.Module] = set
		}
		set[data.Kernel] = true
	})
	return kd
}

// Detach removes the detector's hook from the driver.
func (kd *KernelDetector) Detach(d *cudasim.Driver) { d.Hooks.Unsubscribe(kd.sub) }

// UsedKernels returns the sorted kernel names recorded for a library.
func (kd *KernelDetector) UsedKernels(library string) []string {
	return sortedKeys(kd.used[library])
}

// Libraries returns the sorted names of libraries that launched kernels.
func (kd *KernelDetector) Libraries() []string {
	return sortedKeys2(kd.used)
}

// AllUsed returns a copy of the full library -> kernels mapping.
func (kd *KernelDetector) AllUsed() map[string][]string {
	out := make(map[string][]string, len(kd.used))
	for lib, set := range kd.used {
		out[lib] = sortedKeys(set)
	}
	return out
}

// NSysTracer models a full profiling tracer: it records every kernel launch
// (and module load) with a comparatively heavy per-record cost, matching the
// `nsys profile --trace=cuda` setup in the paper's appendix.
type NSysTracer struct {
	sub     *cupti.Subscriber
	Records int64
}

// NSysCosts returns the cost profile of the full tracer.
func NSysCosts() (instrumentation, perRecord time.Duration) {
	return 40 * time.Microsecond, 72 * time.Microsecond
}

// AttachNSys subscribes an NSys-like tracer to the driver.
func AttachNSys(d *cudasim.Driver) *NSysTracer {
	instr, rec := NSysCosts()
	tr := &NSysTracer{
		sub: &cupti.Subscriber{
			Name:                "nsys",
			InstrumentationCost: instr,
			PerRecordCost:       rec,
		},
	}
	tr.sub.EnableCallback(cupti.CBIDLaunchKernel)
	tr.sub.EnableCallback(cupti.CBIDModuleLoad)
	tr.sub.EnableCallback(cupti.CBIDMemAlloc)
	tr.sub.EnableCallback(cupti.CBIDMemFree)
	d.Hooks.Subscribe(tr.sub, func(data *cupti.CallbackData) {
		tr.Records++
	})
	return tr
}

// Detach removes the tracer's hook from the driver.
func (tr *NSysTracer) Detach(d *cudasim.Driver) { d.Hooks.Unsubscribe(tr.sub) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string]map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
