package trace

import (
	"bytes"
	"reflect"
	"testing"

	"negativaml/internal/cubin"
	"negativaml/internal/cudasim"
	"negativaml/internal/elfx"
	"negativaml/internal/fatbin"
	"negativaml/internal/gpuarch"
)

func buildLib(t *testing.T, name string, kernels ...string) *elfx.Library {
	t.Helper()
	b := elfx.NewBuilder(name)
	b.AddFunction("host", 32)
	fb := &fatbin.FatBin{}
	reg := fb.AddRegion()
	for _, k := range kernels {
		c := cubin.New(gpuarch.SM75)
		c.AddKernel(cubin.Kernel{Name: k, Code: bytes.Repeat([]byte{0x90}, 64), Flags: cubin.FlagEntry})
		blob, err := c.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		reg.AddElement(fatbin.Element{Kind: fatbin.KindCubin, Arch: gpuarch.SM75, Payload: blob})
	}
	fbb, err := fb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b.SetFatbin(fbb)
	data, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := elfx.Parse(name, data)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func runWorkload(d *cudasim.Driver, m *cudasim.Module, launches map[string]int, t *testing.T) {
	t.Helper()
	for name, n := range launches {
		fn, err := m.GetFunction(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := d.Launch(fn); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestDetectorRecordsUsedKernelsOnce(t *testing.T) {
	lib := buildLib(t, "libtorch_cuda.so", "matmul", "conv", "relu")
	d := cudasim.NewDefault()
	ctx := d.NewContext(gpuarch.T4, cudasim.EagerLoading)
	kd := AttachDetector(d)
	m, err := ctx.LoadModule(lib)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(d, m, map[string]int{"matmul": 100, "conv": 3}, t)

	got := kd.UsedKernels("libtorch_cuda.so")
	want := []string{"conv", "matmul"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("used = %v, want %v", got, want)
	}
	if libs := kd.Libraries(); len(libs) != 1 || libs[0] != "libtorch_cuda.so" {
		t.Errorf("libraries = %v", libs)
	}
	all := kd.AllUsed()
	if !reflect.DeepEqual(all["libtorch_cuda.so"], want) {
		t.Errorf("AllUsed = %v", all)
	}
	// relu never launched → not recorded.
	for _, k := range got {
		if k == "relu" {
			t.Error("relu should not be recorded")
		}
	}
}

func TestDetectorOverheadBelowNSys(t *testing.T) {
	run := func(attach func(*cudasim.Driver) func()) int64 {
		lib := buildLib(t, "lib.so", "matmul", "conv")
		d := cudasim.NewDefault()
		ctx := d.NewContext(gpuarch.T4, cudasim.EagerLoading)
		detach := attach(d)
		m, _ := ctx.LoadModule(lib)
		runWorkload(d, m, map[string]int{"matmul": 2000, "conv": 2000}, t)
		detach()
		return int64(d.Clock.Now())
	}

	base := run(func(d *cudasim.Driver) func() { return func() {} })
	det := run(func(d *cudasim.Driver) func() {
		kd := AttachDetector(d)
		return func() { kd.Detach(d) }
	})
	nsys := run(func(d *cudasim.Driver) func() {
		tr := AttachNSys(d)
		return func() { tr.Detach(d) }
	})

	if det <= base {
		t.Error("detector should add overhead")
	}
	if nsys <= det {
		t.Errorf("NSys overhead (%d) must exceed detector overhead (%d)", nsys-base, det-base)
	}
	// The gap should be substantial: NSys pays per launch, detector per kernel.
	if float64(nsys-base) < 2*float64(det-base) {
		t.Errorf("NSys overhead %d should be at least 2x detector overhead %d", nsys-base, det-base)
	}
}

func TestNSysRecordsEveryLaunch(t *testing.T) {
	lib := buildLib(t, "lib.so", "matmul")
	d := cudasim.NewDefault()
	ctx := d.NewContext(gpuarch.T4, cudasim.EagerLoading)
	tr := AttachNSys(d)
	m, _ := ctx.LoadModule(lib)
	runWorkload(d, m, map[string]int{"matmul": 50}, t)
	// 50 launches + 1 module load.
	if tr.Records != 51 {
		t.Errorf("records = %d, want 51", tr.Records)
	}
}

func TestDetachStopsRecording(t *testing.T) {
	lib := buildLib(t, "lib.so", "matmul", "conv")
	d := cudasim.NewDefault()
	ctx := d.NewContext(gpuarch.T4, cudasim.EagerLoading)
	kd := AttachDetector(d)
	m, _ := ctx.LoadModule(lib)
	runWorkload(d, m, map[string]int{"matmul": 1}, t)
	kd.Detach(d)
	runWorkload(d, m, map[string]int{"conv": 1}, t)
	got := kd.UsedKernels("lib.so")
	if !reflect.DeepEqual(got, []string{"matmul"}) {
		t.Errorf("after detach, used = %v, want [matmul]", got)
	}
}

func TestDetectorEmptyLibrary(t *testing.T) {
	kd := &KernelDetector{used: map[string]map[string]bool{}}
	if ks := kd.UsedKernels("none"); len(ks) != 0 {
		t.Errorf("unknown library should have no kernels, got %v", ks)
	}
}
