package negativaml

import (
	"testing"
	"time"
)

// The facade must support the full quickstart flow from the package docs.
func TestFacadeQuickstart(t *testing.T) {
	install, err := GenerateInstall(PyTorch, 10)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		Name:           "PyTorch/Inference/MobileNetV2",
		Install:        install,
		Graph:          MobileNetV2(false, 1),
		Devices:        []Device{T4},
		Mode:           EagerLoading,
		Data:           CIFAR10,
		PerItemCompute: 50 * time.Millisecond,
	}
	run, err := RunWorkload(w, RunOptions{MaxSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if run.Digest == 0 || run.ExecTime <= 0 {
		t.Fatalf("empty run result: %+v", run)
	}

	profile, err := DetectUsage(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile.UsedKernels) == 0 {
		t.Fatal("no kernels detected")
	}

	res, err := Debloat(w, DebloatOptions{MaxSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("debloated workload failed verification")
	}
	agg := res.Aggregate()
	if agg.GPUReductionPct() <= 0 || agg.CPUReductionPct() <= 0 {
		t.Errorf("no reduction measured: %+v", agg)
	}
}

func TestFacadeModels(t *testing.T) {
	if g := Transformer(true, 128); !g.Train || g.Batch != 128 {
		t.Error("Transformer facade broken")
	}
	if g := Llama2(true, 8); g.Model != "Llama2" {
		t.Error("Llama2 facade broken")
	}
	for _, d := range []Device{T4, A100, H100} {
		if d.MemBytes <= 0 {
			t.Errorf("%s: bad device", d.Name)
		}
	}
	for _, ds := range []Dataset{CIFAR10, Multi30k, WMT14, ManualInput} {
		if ds.Name == "" {
			t.Error("bad dataset")
		}
	}
}

func TestFacadeFrameworks(t *testing.T) {
	for _, fw := range []string{PyTorch, TensorFlow, VLLM, HFTransformers} {
		in, err := GenerateInstall(fw, 2)
		if err != nil {
			t.Fatalf("%s: %v", fw, err)
		}
		if len(in.LibNames) == 0 {
			t.Errorf("%s: empty install", fw)
		}
	}
}
